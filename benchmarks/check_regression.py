"""Performance regression gates (opt-in).

Two committed floors, each deliberately ~10-20x under what a healthy
build posts on a developer container, so only a genuine algorithmic
regression trips them — CI jitter does not:

* **eventloop-dispatch-1k** — quick-mode timer dispatch at 1k sources
  (the PR-2 indexed scheduler; a decay back to the linear scan trips it).
* **net-wire-binary** — quick-mode binary columnar wire ingest over
  ``memory_pair`` (the PR-3 binary protocol; a decay back to per-sample
  strings or per-tuple objects trips it).
* **capture-write-1m** — capture-store write throughput at 1M samples
  (the PR-4 segmented columnar store; a decay back to per-tuple text
  recording trips it).
* **query-arith-1m** — end-to-end batch query throughput for a 2-op
  arithmetic expression over a 1M-sample capture (the PR-5 derived-
  signal engine; a decay to per-sample interpretation trips it).
* **failover-recovery-200k** — supervised shard restart with WAL replay
  catch-up at 200k samples (the PR-6 fault-tolerance plane; a decay to
  per-sample replay, or a restart path that re-reads the store per
  block, trips it).
* **query-fused-1m** — the X12a arithmetic query again, but gated at a
  floor only the fused native data path clears (the PR-7 fusion pass +
  single-pass kernels + zero-copy read; losing fusion or the compiled
  backend trips it).  Skipped entirely when the machine has no native
  backend — the other gates still run.
* **distributed-ingest-4p** — X14a process-worker ingest scaling (the
  PR-8 multi-process shard plane): 4 workers must post at least 2x the
  1-worker rate.  A serialized router (blocking flushes, a drain that
  round-trips per batch) trips it.  The ratio is core-bound, so the
  gate only runs on machines with >= 4 CPUs — 1-core containers skip
  it (the JSON still records both rates and the core count).
* **query-fanout-1k** — X12e continuous-query subscriber scaling (the
  PR-9 multiplexed subscription plane): 1000 subscribers sharing one
  derived view must cost < 2x the 1-subscriber wall time.  A decay to
  per-subscriber evaluation, per-subscriber encoding, or an O(watches)
  loop tick trips it.  The ratio is the minimum over paired attempts —
  scheduler noise only ever inflates one side of a wall-clock pair.
* **obs-overhead** — X15a self-instrumentation cost (the PR-10
  observability plane): the fully instrumented 1M-sample ingest run
  (registry, loop profiler, live publisher, installed tracer) must
  post >= 95% of the bare run's throughput.  A per-sample guard, an
  allocation on the span fast path, or a publisher pass that walks
  clean instruments expensively trips it.

Opt-in, so tier-1 stays fast:

* as pytest markers::

    REPRO_BENCH=1 PYTHONPATH=src python -m pytest benchmarks/check_regression.py -q

  (without ``REPRO_BENCH=1`` the tests are skipped; they also carry the
  ``benchmark`` marker so ``-m "not benchmark"`` deselects them wholesale)

* as a script, for CI pipelines that want the JSON::

    PYTHONPATH=src python benchmarks/check_regression.py
"""

from __future__ import annotations

import json
import os
import sys
import time

import pytest

from bench_capture import bench_write
from bench_distributed import bench_process_ingest
from bench_eventloop import ACCEPTANCE_SOURCES, bench_dispatch
from bench_failover import bench_recovery
from bench_net import bench_wire
from bench_query import bench_batch, fanout_ratio
from repro.eventloop.loop import MainLoop

# Committed floor: dispatches/second at 1k attached timer sources.  A
# healthy indexed loop posts ~300-550k/s; the seed scan loop posted ~5k/s.
DISPATCH_FLOOR_1K = 50_000.0
QUICK_TARGET_DISPATCHES = 1_000

# Committed floor: server-ingested samples/second for the binary
# columnar wire path at the quick size.  A healthy build posts ~8-11M/s;
# the text-tuple path posts ~170k/s.
WIRE_FLOOR_BINARY = 500_000.0
WIRE_QUICK_SAMPLES = 100_000

# Committed floor: capture-store write throughput at 1M samples pushed
# in 1k batches.  A healthy build posts ~12-16M/s; text-tuple recording
# posts well under 1M/s.
CAPTURE_WRITE_FLOOR = 5_000_000.0
CAPTURE_WRITE_SAMPLES = 1_000_000

# Committed floor: end-to-end batch query throughput (capture read +
# time-aligning join + arithmetic) for a 2-op expression at 1M samples.
# A healthy build posts ~7-11M/s.
QUERY_ARITH_FLOOR = 5_000_000.0
QUERY_ARITH_SAMPLES = 1_000_000

# Committed floor: the same 2-op batch query, gated at a level only the
# fused native path reaches (one compiled kernel per chain, one-pass
# verified gather, run-span join merge).  A healthy native build posts
# ~45-60M/s; the unfused per-operator path posts ~7-11M/s, so a lost
# fusion pass or broken kernel build trips this long before correctness
# suites notice.  Native-less machines skip the gate.
QUERY_FUSED_FLOOR = 30_000_000.0

# Committed floor: WAL replay catch-up throughput during a supervised
# shard restart at 200k samples.  A healthy build posts ~3-5M/s (the
# columnar replay path); per-sample re-pushes would post well under it.
RECOVERY_FLOOR = 300_000.0
RECOVERY_SAMPLES = 200_000

# Committed floor: 4 process workers over 1 worker on the X14a ingest
# benchmark.  The ISSUE target is >= 3x on a dedicated 4-core box; the
# committed gate is 2x so shared-CI core stealing does not trip it while
# a serialized router still does.  Core-bound, hence the cpu guard.
DISTRIBUTED_SPEEDUP_FLOOR = 2.0
DISTRIBUTED_MIN_CPUS = 4

# Committed ceiling: 1000 subscribers on one shared derived view versus
# a single subscriber (X12e), wall-time ratio, minimum over paired
# attempts.  The ROADMAP target is < 2x; a healthy build posts ~1.4-1.8x.
# Losing evaluation sharing would post ~1000x, losing the encode-once
# fan-out or the hinted (O(ready)) loop partition posts well over 2x.
FANOUT_RATIO_CEILING = 2.0

# Committed floor: instrumented-over-bare ingest throughput ratio on
# the X15a run (best seconds each side).  The ISSUE acceptance is 95%;
# a healthy build posts ~0.98-1.0 — the obs plane costs one branch per
# batch, not per sample.
OBS_OVERHEAD_FLOOR = 0.95

ATTEMPTS = 3  # best-of-N damps scheduler noise on shared machines

pytestmark = [
    pytest.mark.benchmark,
    pytest.mark.skipif(
        not os.environ.get("REPRO_BENCH"),
        reason="perf regression gate is opt-in: set REPRO_BENCH=1",
    ),
]


def measure_best_dispatch() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_dispatch(MainLoop, ACCEPTANCE_SOURCES, QUICK_TARGET_DISPATCHES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def measure_best_wire() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_wire("binary", WIRE_QUICK_SAMPLES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def measure_best_capture() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_write(CAPTURE_WRITE_SAMPLES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def measure_best_query() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_batch(QUERY_ARITH_SAMPLES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def test_query_fused_floor():
    from repro.core import native

    if not native.available():
        pytest.skip("no native backend on this machine")
    best = measure_best_query()
    assert best["rate_per_sec"] >= QUERY_FUSED_FLOOR, (
        f"fused query data path regressed: "
        f"{best['rate_per_sec']:.0f} samples/s < floor {QUERY_FUSED_FLOOR:.0f}/s "
        f"(backend {native.mode()})"
    )


def measure_best_distributed() -> dict:
    """Best-of-N 1-worker and 4-worker X14a rates, paired per attempt."""
    best: dict = {"speedup": 0.0}
    for _ in range(ATTEMPTS):
        one = bench_process_ingest(1)
        four = bench_process_ingest(4)
        speedup = four["rate_per_sec"] / one["rate_per_sec"]
        if speedup > best["speedup"]:
            best = {
                "speedup": speedup,
                "rate_1p": one["rate_per_sec"],
                "rate_4p": four["rate_per_sec"],
                "samples": one["samples"],
                "cpu_count": os.cpu_count(),
            }
    return best


@pytest.mark.distributed
def test_distributed_ingest_floor():
    if (os.cpu_count() or 1) < DISTRIBUTED_MIN_CPUS:
        pytest.skip(
            f"process-scaling gate needs >= {DISTRIBUTED_MIN_CPUS} CPUs "
            f"(machine has {os.cpu_count()})"
        )
    best = measure_best_distributed()
    assert best["speedup"] >= DISTRIBUTED_SPEEDUP_FLOOR, (
        f"process-worker ingest scaling regressed: 4 workers posted "
        f"x{best['speedup']:.2f} over 1 worker "
        f"({best['rate_4p']:.0f}/s vs {best['rate_1p']:.0f}/s), "
        f"floor x{DISTRIBUTED_SPEEDUP_FLOOR:.1f} on {best['cpu_count']} CPUs"
    )


def measure_best_fanout() -> dict:
    """Min-over-paired-attempts 1k-vs-1 subscriber wall-time ratio."""
    runs, ratio = fanout_ratio(ATTEMPTS)
    return {
        "ratio": ratio,
        "seconds_1": min(s["seconds"] for s, _ in runs),
        "seconds_1k": min(m["seconds"] for _, m in runs),
        "samples": runs[0][0]["samples"],
    }


def test_query_fanout_floor():
    best = measure_best_fanout()
    assert best["ratio"] < FANOUT_RATIO_CEILING, (
        f"subscriber fan-out scaling regressed: 1k subscribers posted "
        f"x{best['ratio']:.2f} the single-subscriber wall time "
        f"({best['seconds_1k']*1e3:.0f} ms vs {best['seconds_1']*1e3:.0f} ms), "
        f"ceiling x{FANOUT_RATIO_CEILING:.1f}"
    )


def measure_best_obs() -> dict:
    from bench_obs import ingest_overhead

    # The bench's own attempt count: the ratio estimator needs more
    # interleaved pairs than a single-rate best-of-N to damp drift.
    return ingest_overhead()


def test_obs_overhead_floor():
    best = measure_best_obs()
    assert best["ratio"] >= OBS_OVERHEAD_FLOOR, (
        f"self-instrumentation overhead regressed: instrumented ingest "
        f"posted {best['ratio']:.3f}x the bare throughput "
        f"({best['instrumented']['rate_per_sec']:.0f}/s vs "
        f"{best['bare']['rate_per_sec']:.0f}/s), "
        f"floor {OBS_OVERHEAD_FLOOR:.2f}"
    )


def measure_best_recovery() -> dict:
    best: dict = {"rate_per_sec": 0.0}
    for _ in range(ATTEMPTS):
        result = bench_recovery(RECOVERY_SAMPLES)
        if result["rate_per_sec"] > best["rate_per_sec"]:
            best = result
    return best


def test_dispatch_throughput_floor():
    best = measure_best_dispatch()
    assert best["rate_per_sec"] >= DISPATCH_FLOOR_1K, (
        f"dispatch throughput at {ACCEPTANCE_SOURCES} sources regressed: "
        f"{best['rate_per_sec']:.0f}/s < floor {DISPATCH_FLOOR_1K:.0f}/s"
    )


def test_wire_throughput_floor():
    best = measure_best_wire()
    assert best["rate_per_sec"] >= WIRE_FLOOR_BINARY, (
        f"binary wire ingest throughput regressed: "
        f"{best['rate_per_sec']:.0f} samples/s < floor {WIRE_FLOOR_BINARY:.0f}/s"
    )


def test_capture_write_floor():
    best = measure_best_capture()
    assert best["rate_per_sec"] >= CAPTURE_WRITE_FLOOR, (
        f"capture write throughput regressed: "
        f"{best['rate_per_sec']:.0f} samples/s < floor {CAPTURE_WRITE_FLOOR:.0f}/s"
    )


def test_query_arith_floor():
    best = measure_best_query()
    assert best["rate_per_sec"] >= QUERY_ARITH_FLOOR, (
        f"batch query throughput regressed: "
        f"{best['rate_per_sec']:.0f} samples/s < floor {QUERY_ARITH_FLOOR:.0f}/s"
    )


def test_failover_recovery_floor():
    best = measure_best_recovery()
    assert best["rate_per_sec"] >= RECOVERY_FLOOR, (
        f"restart replay catch-up throughput regressed: "
        f"{best['rate_per_sec']:.0f} samples/s < floor {RECOVERY_FLOOR:.0f}/s"
    )


def main() -> int:
    from repro.core import native

    t0 = time.perf_counter()
    dispatch = measure_best_dispatch()
    wire = measure_best_wire()
    capture = measure_best_capture()
    query = measure_best_query()
    recovery = measure_best_recovery()
    gates = [
        {
            "gate": "eventloop-dispatch-1k",
            "floor_per_sec": DISPATCH_FLOOR_1K,
            "measured_per_sec": dispatch["rate_per_sec"],
            "dispatches": dispatch["dispatches"],
            "passed": dispatch["rate_per_sec"] >= DISPATCH_FLOOR_1K,
        },
        {
            "gate": "net-wire-binary",
            "floor_per_sec": WIRE_FLOOR_BINARY,
            "measured_per_sec": wire["rate_per_sec"],
            "samples": wire["samples"],
            "passed": wire["rate_per_sec"] >= WIRE_FLOOR_BINARY,
        },
        {
            "gate": "capture-write-1m",
            "floor_per_sec": CAPTURE_WRITE_FLOOR,
            "measured_per_sec": capture["rate_per_sec"],
            "samples": capture["samples"],
            "passed": capture["rate_per_sec"] >= CAPTURE_WRITE_FLOOR,
        },
        {
            "gate": "query-arith-1m",
            "floor_per_sec": QUERY_ARITH_FLOOR,
            "measured_per_sec": query["rate_per_sec"],
            "samples": query["samples"],
            "passed": query["rate_per_sec"] >= QUERY_ARITH_FLOOR,
        },
        {
            "gate": "failover-recovery-200k",
            "floor_per_sec": RECOVERY_FLOOR,
            "measured_per_sec": recovery["rate_per_sec"],
            "samples": recovery["samples"],
            "restart_seconds": recovery["restart_seconds"],
            "passed": recovery["rate_per_sec"] >= RECOVERY_FLOOR,
        },
    ]
    if native.available():
        gates.append(
            {
                "gate": "query-fused-1m",
                "floor_per_sec": QUERY_FUSED_FLOOR,
                "measured_per_sec": query["rate_per_sec"],
                "samples": query["samples"],
                "backend": native.mode(),
                "passed": query["rate_per_sec"] >= QUERY_FUSED_FLOOR,
            }
        )
    fanout = measure_best_fanout()
    gates.append(
        {
            "gate": "query-fanout-1k",
            "ceiling_ratio": FANOUT_RATIO_CEILING,
            "measured_ratio": fanout["ratio"],
            "seconds_1": fanout["seconds_1"],
            "seconds_1k": fanout["seconds_1k"],
            "samples": fanout["samples"],
            "passed": fanout["ratio"] < FANOUT_RATIO_CEILING,
        }
    )
    obs = measure_best_obs()
    gates.append(
        {
            "gate": "obs-overhead",
            "floor_ratio": OBS_OVERHEAD_FLOOR,
            "measured_ratio": obs["ratio"],
            "rate_bare_per_sec": obs["bare"]["rate_per_sec"],
            "rate_instrumented_per_sec": obs["instrumented"]["rate_per_sec"],
            "samples": obs["samples"],
            "passed": obs["ratio"] >= OBS_OVERHEAD_FLOOR,
        }
    )
    distributed = measure_best_distributed()
    gate = {
        "gate": "distributed-ingest-4p",
        "floor_speedup": DISTRIBUTED_SPEEDUP_FLOOR,
        "measured_speedup": distributed["speedup"],
        "rate_1p_per_sec": distributed["rate_1p"],
        "rate_4p_per_sec": distributed["rate_4p"],
        "samples": distributed["samples"],
        "cpu_count": distributed["cpu_count"],
    }
    if (distributed["cpu_count"] or 1) < DISTRIBUTED_MIN_CPUS:
        # The speedup is core-bound: on fewer than 4 CPUs the rates are
        # recorded for the ledger but the ratio cannot gate anything.
        gate["passed"] = True
        gate["skipped"] = f"machine has < {DISTRIBUTED_MIN_CPUS} CPUs"
    else:
        gate["passed"] = distributed["speedup"] >= DISTRIBUTED_SPEEDUP_FLOOR
    gates.append(gate)
    passed = all(g["passed"] for g in gates)
    print(
        json.dumps(
            {
                "attempts": ATTEMPTS,
                "wall_seconds": time.perf_counter() - t0,
                "gates": gates,
                "passed": passed,
            },
            indent=2,
        )
    )
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
