"""X10 — wire throughput: binary columnar frames vs text tuple lines.

Section 4.4's distributed story only scales if the network boundary
keeps the columnar hot path: the text protocol formats and parses one
string per sample, while the binary protocol ships whole ``float64``
columns per frame.  This benchmark measures the **full server-ingest
path** — encode → transport → incremental decode → manager push into the
scope buffer — for both protocols:

* **X10a — memory_pair**: 1M samples over the deterministic in-memory
  transport, text vs binary.  Acceptance: binary ≥ 10x text.
* **X10b — socket_pair**: the binary path over a real non-blocking
  socketpair (smaller volume; measures syscall-bound throughput).
* **X10c — sharded fan-in**: binary ingest through a
  ``ShardedScopeManager`` across 4 shards, many signals.

Run stand-alone for machine-readable JSON (``--json PATH`` writes it,
otherwise it lands on stdout)::

    PYTHONPATH=src python benchmarks/bench_net.py [--quick] [--json out.json]

or through pytest for the acceptance assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_net.py -q -s
"""

from __future__ import annotations

import json
import sys
import time
from typing import Dict, Optional

import numpy as np
from conftest import report

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import (
    ScopeClient,
    ScopeServer,
    ShardedScopeManager,
    memory_pair,
    socket_pair,
)

ACCEPTANCE_MIN_SPEEDUP = 10.0
TOTAL_SAMPLES = 1_000_000
QUICK_SAMPLES = 100_000
SOCKET_SAMPLES = 200_000
BATCH = 1_000


def _drain(loop: MainLoop, server, total: int, max_rounds: int = 10_000) -> None:
    """Pump the loop until the server has ingested ``total`` samples."""
    rounds = 0
    while server.totals()["received"] < total:
        loop.run_for(1)
        rounds += 1
        if rounds > max_rounds:
            raise RuntimeError(
                f"wire stalled: {server.totals()['received']}/{total} after "
                f"{rounds} drain rounds"
            )


def bench_wire(
    mode: str,
    total: int,
    batch: int = BATCH,
    transport: str = "memory",
    signals: int = 1,
    shards: int = 0,
) -> Dict[str, float]:
    """End-to-end wire ingest: encode → transport → decode → manager push.

    A huge display delay keeps every sample acceptable, so the numbers
    measure the pipeline, not the drop policy; the scope is not polling,
    so nothing drains the buffer mid-run (ingest only).
    """
    loop = MainLoop()
    if shards:
        manager = ShardedScopeManager(shards=shards, loop=loop)
    else:
        manager = ScopeManager(loop)
    names = [f"wire{i}" for i in range(signals)]
    for i, name in enumerate(names):
        if shards:
            scope = manager.scope_new(
                f"sink{i}", shard=manager.shard_of(name), period_ms=50, delay_ms=1e15
            )
        else:
            scope = manager.scope_new(f"sink{i}", period_ms=50, delay_ms=1e15)
        scope.signal_new(buffer_signal(name))
    server = ScopeServer(loop, manager)
    if transport == "memory":
        near, far = memory_pair(loop.clock)
    else:
        near, far = socket_pair()
    server.add_client(far)
    client = ScopeClient(near, loop, mode=mode, max_queue=1 << 30)

    rng = np.random.default_rng(12345)
    values = rng.standard_normal(batch)
    t0 = time.perf_counter()
    sent = 0
    i = 0
    while sent < total:
        n = min(batch, total - sent)
        now = loop.clock.now()
        times = np.linspace(now, now + 1.0, n)
        client.send_samples(names[i % signals], values[:n], times=times)
        sent += n
        i += 1
        if transport == "socket":
            # Real sockets back-pressure: pump both ends as we go.
            loop.run_for(1)
    _drain(loop, server, total)
    elapsed = time.perf_counter() - t0

    totals = server.totals()
    assert totals["received"] == total, totals
    assert totals["accepted"] == total, totals
    return {
        "mode": mode,
        "transport": transport,
        "samples": total,
        "seconds": elapsed,
        "rate_per_sec": total / elapsed,
        "bytes_on_wire": totals["bytes_received"],
        "bytes_per_sample": totals["bytes_received"] / total,
    }


def run_suite(total: int, socket_total: int) -> dict:
    text = bench_wire("text", total)
    binary = bench_wire("binary", total)
    sock = bench_wire("binary", socket_total, transport="socket")
    sharded = bench_wire("binary", total, signals=16, shards=4)
    return {
        "benchmark": "net-wire",
        "acceptance": {"min_speedup": ACCEPTANCE_MIN_SPEEDUP},
        "memory_pair": {
            "samples": total,
            "text_rate_per_sec": text["rate_per_sec"],
            "binary_rate_per_sec": binary["rate_per_sec"],
            "speedup": binary["rate_per_sec"] / text["rate_per_sec"],
            "text_bytes_per_sample": text["bytes_per_sample"],
            "binary_bytes_per_sample": binary["bytes_per_sample"],
        },
        "socket_pair": {
            "samples": socket_total,
            "binary_rate_per_sec": sock["rate_per_sec"],
        },
        "sharded": {
            "samples": total,
            "shards": 4,
            "signals": 16,
            "binary_rate_per_sec": sharded["rate_per_sec"],
        },
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_binary_wire_speedup(benchmark=None):
    total = QUICK_SAMPLES
    text = bench_wire("text", total)
    binary = bench_wire("binary", total)
    speedup = binary["rate_per_sec"] / text["rate_per_sec"]
    report(
        "X10a: wire ingest, text vs binary columnar "
        f"({total} samples, memory_pair)",
        [
            ("text", f"{text['rate_per_sec']:,.0f} samples/s "
                     f"({text['bytes_per_sample']:.1f} B/sample)"),
            ("binary", f"{binary['rate_per_sec']:,.0f} samples/s "
                       f"({binary['bytes_per_sample']:.1f} B/sample)"),
            ("speedup", f"{speedup:.1f}x (acceptance >= {ACCEPTANCE_MIN_SPEEDUP}x)"),
        ],
    )
    assert speedup >= ACCEPTANCE_MIN_SPEEDUP


def test_binary_over_sockets():
    result = bench_wire("binary", 50_000, transport="socket")
    report(
        "X10b: binary columnar over a real socketpair",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s")],
    )
    assert result["rate_per_sec"] > 0


def test_sharded_fan_in():
    result = bench_wire("binary", QUICK_SAMPLES, signals=16, shards=4)
    report(
        "X10c: sharded fan-in (4 shards, 16 signals)",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s")],
    )
    assert result["rate_per_sec"] > 0


# ----------------------------------------------------------------------
# stand-alone JSON mode
# ----------------------------------------------------------------------
def main(argv) -> int:
    quick = "--quick" in argv
    out_path: Optional[str] = None
    if "--json" in argv:
        out_path = argv[argv.index("--json") + 1]
    total = QUICK_SAMPLES if quick else TOTAL_SAMPLES
    socket_total = 50_000 if quick else SOCKET_SAMPLES
    result = run_suite(total, socket_total)
    result["mode"] = "quick" if quick else "full"
    text = json.dumps(result, indent=2)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(text + "\n")
    print(text)
    mem = result["memory_pair"]
    return 0 if mem["speedup"] >= ACCEPTANCE_MIN_SPEEDUP else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
