"""E2 — Section 4.6: per-signal overhead increment.

The paper: "The increase in overhead with increasing number of signals
being displayed ranges from 0.02 to 0.05 percent per signal.  When
compared to the number of signals displayed, polling granularity has a
much larger effect on CPU consumption."

We sweep the displayed signal count at a fixed 10 ms period and fit the
per-signal increment, then compare it against the effect of the period
change measured in E1: the per-signal slope must be small relative to
the base polling cost, reproducing the paper's conclusion.
"""

from conftest import report

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.workload.loadgen import measure_overhead

PERIOD_MS = 10.0
DURATION_MS = 400.0
COUNTS = (1, 8, 32)


def scope_setup(signal_count: int):
    def attach(loop):
        scope = Scope("signals", loop, period_ms=PERIOD_MS)
        for i in range(signal_count):
            scope.signal_new(memory_signal(f"sig{i}", Cell(i)))
        scope.start_polling()

    return attach


def run_sweep():
    return {
        n: measure_overhead(scope_setup(n), duration_ms=DURATION_MS, repeats=3)
        for n in COUNTS
    }


def test_per_signal_overhead(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    lo, hi = COUNTS[0], COUNTS[-1]
    per_signal = (
        results[hi].overhead_percent - results[lo].overhead_percent
    ) / (hi - lo)

    # Shape 1: more signals never get dramatically cheaper (noise floor
    # aside) and the per-signal increment is small.
    assert per_signal > -0.05
    assert per_signal < 1.0  # well under 1 % per signal even in Python
    # Shape 2 (the paper's conclusion): the whole 31-signal increment is
    # smaller than the cost of the polling machinery itself at 10 ms.
    base_cost = results[lo].overhead_percent
    full_increment = results[hi].overhead_percent - results[lo].overhead_percent
    assert full_increment < max(base_cost, 2.0) * 4

    report(
        "E2: per-signal overhead (Section 4.6)",
        [
            ("paper", "0.02-0.05 % per signal; period dominates"),
            ("measured per-signal", f"{per_signal:.3f} % per signal"),
        ]
        + [
            (f"overhead @{n} signals", f"{results[n].overhead_percent:.2f} %")
            for n in COUNTS
        ],
    )
