"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact (figure or evaluation
number) and prints a paper-vs-measured comparison table.  Shapes are
asserted; absolute numbers are reported for EXPERIMENTS.md.
"""

from __future__ import annotations


def report(title: str, rows: list) -> None:
    """Print a small aligned table under a heading.

    ``rows`` is a list of (label, value) pairs; values are formatted as
    given so callers control precision.
    """
    print(f"\n=== {title} ===")
    width = max((len(str(label)) for label, _ in rows), default=0)
    for label, value in rows:
        print(f"  {str(label):<{width}}  {value}")
