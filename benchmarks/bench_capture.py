"""X11 — capture store: write, indexed seek, and replay throughput.

Section 3.3's record/replay only matters at scale if the store keeps up
with the columnar pipeline: the binary wire ingests ~10M samples/s, so
recording must sustain millions of samples per second and replay must
re-drive a manager at the same order of magnitude, with seeks that do
not scan the stream.  Three measurements:

* **X11a `write`** — ``CaptureWriter.on_push`` batches → segment files,
  1M samples.  Acceptance: ≥ 5M samples/s.
* **X11b `seek`** — random indexed timestamp seeks against 100k- and
  1M-sample stores.  Acceptance: per-seek cost grows sub-linearly
  (O(log n): a 10x store may cost at most ~4x per seek, against ~10x
  for a scan).
* **X11c `replay`** — ``ReplaySource`` re-driving a ``ScopeManager``
  through the event loop, whole-store.

Run stand-alone for machine-readable JSON (``--json PATH`` writes it,
otherwise it lands on stdout)::

    PYTHONPATH=src python benchmarks/bench_capture.py [--quick] [--json out.json]

or through pytest for the acceptance assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_capture.py -q -s
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, Optional

import numpy as np
from conftest import report

from repro.capture import CaptureReader, CaptureWriter, ReplaySource
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop

ACCEPTANCE_WRITE_RATE = 5_000_000.0
ACCEPTANCE_SEEK_SCALING = 4.0
TOTAL_SAMPLES = 1_000_000
QUICK_SAMPLES = 200_000
BATCH = 1_000
SIGNALS = 8
SEEKS = 2_000


def build_store(path: Path, total: int, batch: int = BATCH) -> Dict[str, float]:
    """Write ``total`` samples through the tap interface; returns stats."""
    rng = np.random.default_rng(1234)
    values = rng.standard_normal(batch)
    names = [f"cap{i}" for i in range(SIGNALS)]
    writer = CaptureWriter(path)
    now = 0.0
    sent = 0
    index = 0
    t0 = time.perf_counter()
    while sent < total:
        n = min(batch, total - sent)
        now += 1.0
        times = np.linspace(now - 1.0, now, n)
        writer.on_push(names[index % SIGNALS], times, values[:n], now)
        sent += n
        index += 1
    writer.close()
    elapsed = time.perf_counter() - t0
    return {
        "samples": total,
        "seconds": elapsed,
        "rate_per_sec": total / elapsed,
        "segments": writer.segments_written,
        "bytes": writer.bytes_written,
        "bytes_per_sample": writer.bytes_written / total,
    }


def bench_write(total: int, batch: int = BATCH) -> Dict[str, float]:
    root = Path(tempfile.mkdtemp(prefix="bench_capture_"))
    try:
        return build_store(root / "store", total, batch)
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_seek(total: int, seeks: int = SEEKS) -> Dict[str, float]:
    """Random indexed seeks against a ``total``-sample store."""
    root = Path(tempfile.mkdtemp(prefix="bench_capture_"))
    try:
        build_store(root / "store", total)
        reader = CaptureReader(root / "store")
        span = reader.end_time_ms - reader.start_time_ms
        rng = np.random.default_rng(99)
        targets = reader.start_time_ms + rng.uniform(0.0, 1.0, seeks) * span
        reader.seek(float(targets[0]))  # warm: mmap touch + CRC of one block
        t0 = time.perf_counter()
        for t in targets:
            reader.seek(float(t))
        elapsed = time.perf_counter() - t0
        return {
            "samples": total,
            "seeks": seeks,
            "seconds": elapsed,
            "rate_per_sec": seeks / elapsed,
            "microseconds_per_seek": 1e6 * elapsed / seeks,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def bench_replay(total: int) -> Dict[str, float]:
    """Whole-store replay into a live manager through the event loop."""
    root = Path(tempfile.mkdtemp(prefix="bench_capture_"))
    try:
        build_store(root / "store", total)
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("sink", period_ms=50, delay_ms=1e15)
        for i in range(SIGNALS):
            scope.signal_new(buffer_signal(f"cap{i}"))
        source = ReplaySource(CaptureReader(root / "store"), manager)
        loop.attach(source)
        t0 = time.perf_counter()
        loop.run_until(2_000_000.0)
        elapsed = time.perf_counter() - t0
        assert source.exhausted, "replay did not finish inside the run window"
        assert scope.buffer.stats.pushed == total
        return {
            "samples": total,
            "seconds": elapsed,
            "rate_per_sec": total / elapsed,
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_suite(total: int) -> dict:
    write = bench_write(total)
    seek_small = bench_seek(max(total // 10, 10_000))
    seek_large = bench_seek(total)
    replay = bench_replay(total)
    return {
        "benchmark": "capture",
        "acceptance": {
            "min_write_rate_per_sec": ACCEPTANCE_WRITE_RATE,
            "max_seek_scaling": ACCEPTANCE_SEEK_SCALING,
        },
        "write": write,
        "seek": {
            "small": seek_small,
            "large": seek_large,
            "scaling": (
                seek_large["microseconds_per_seek"]
                / seek_small["microseconds_per_seek"]
            ),
        },
        "replay": replay,
    }


# ----------------------------------------------------------------------
# pytest entry points
# ----------------------------------------------------------------------
def test_write_throughput():
    result = bench_write(TOTAL_SAMPLES)
    report(
        f"X11a: capture write ({result['samples']} samples, batches of {BATCH})",
        [
            ("rate", f"{result['rate_per_sec']:,.0f} samples/s "
                     f"(acceptance >= {ACCEPTANCE_WRITE_RATE:,.0f})"),
            ("segments", f"{result['segments']}"),
            ("bytes/sample", f"{result['bytes_per_sample']:.1f}"),
        ],
    )
    assert result["rate_per_sec"] >= ACCEPTANCE_WRITE_RATE


def test_seek_is_logarithmic():
    small = bench_seek(TOTAL_SAMPLES // 10)
    large = bench_seek(TOTAL_SAMPLES)
    scaling = large["microseconds_per_seek"] / small["microseconds_per_seek"]
    report(
        "X11b: indexed seek, 100k vs 1M samples",
        [
            ("100k", f"{small['microseconds_per_seek']:.1f} us/seek"),
            ("1M", f"{large['microseconds_per_seek']:.1f} us/seek"),
            ("scaling", f"{scaling:.2f}x per 10x store "
                        f"(acceptance <= {ACCEPTANCE_SEEK_SCALING}x; linear scan would be ~10x)"),
        ],
    )
    assert scaling <= ACCEPTANCE_SEEK_SCALING
    assert large["rate_per_sec"] >= 10_000


def test_replay_throughput():
    result = bench_replay(QUICK_SAMPLES)
    report(
        f"X11c: replay into a live manager ({result['samples']} samples)",
        [("rate", f"{result['rate_per_sec']:,.0f} samples/s")],
    )
    assert result["rate_per_sec"] > 0


# ----------------------------------------------------------------------
# stand-alone JSON mode
# ----------------------------------------------------------------------
def main(argv) -> int:
    quick = "--quick" in argv
    out_path: Optional[str] = None
    if "--json" in argv:
        out_path = argv[argv.index("--json") + 1]
    total = QUICK_SAMPLES if quick else TOTAL_SAMPLES
    result = run_suite(total)
    result["mode"] = "quick" if quick else "full"
    text = json.dumps(result, indent=2)
    if out_path:
        with open(out_path, "w") as fh:
            fh.write(text + "\n")
    print(text)
    ok = (
        result["write"]["rate_per_sec"] >= ACCEPTANCE_WRITE_RATE
        and result["seek"]["scaling"] <= ACCEPTANCE_SEEK_SCALING
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
