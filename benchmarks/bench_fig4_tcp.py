"""F4 — Figure 4: TCP behaviour under congestion.

The paper's experiment: mxtraf runs long-lived flows through a DropTail
bottleneck; the elephant count doubles from 8 to 16 half way through;
the scope shows the CWND of one arbitrarily chosen flow.  The reported
shape: "the lowest value of the CWND signal corresponds to a CWND value
of one ... TCP hits it several times" and the per-flow window shrinks
when the flow count doubles.

The benchmark regenerates the whole 30-second experiment (simulated
time) and asserts those shape properties.
"""

import statistics

from conftest import report

from repro.core.scope import Scope
from repro.core.signal import SignalType, func_signal, memory_signal
from repro.eventloop.loop import MainLoop
from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig

DURATION_MS = 30_000
SWITCH_MS = 15_000


def run_figure(queue: str, ecn: bool):
    loop = MainLoop()
    engine = Engine()
    network = Network(engine, NetworkConfig(queue=queue, ecn=ecn))
    mxtraf = Mxtraf(network, MxtrafConfig(elephants=8))
    watched = mxtraf.watched_flow()

    scope = Scope("figure", loop, width=600, height=150, period_ms=50)
    scope.signal_new(
        memory_signal(
            "elephants", mxtraf.elephants_cell, SignalType.INTEGER, min=0, max=40
        )
    )
    scope.signal_new(func_signal("CWND", watched.get_cwnd, min=0, max=40))
    scope.set_polling_mode(50)
    scope.start_polling()
    loop.timeout_add(50, lambda lost: engine.advance_to(loop.clock.now()) or True)
    loop.timeout_add(SWITCH_MS, lambda lost: mxtraf.set_elephants(16) and False)
    loop.run_until(DURATION_MS)
    return scope, network, watched


def shape_stats(scope):
    trace = scope.channel("CWND").raw_values()
    half = len(trace) // 2
    dips = sum(
        1
        for i in range(1, len(trace))
        if trace[i] <= 1.01 and trace[i - 1] > 1.01
    )
    return {
        "min": min(trace),
        "dips_to_one": dips,
        "mean_8_flows": statistics.mean(trace[:half]),
        "mean_16_flows": statistics.mean(trace[half:]),
    }


def test_fig4_tcp_behaviour(benchmark):
    scope, network, watched = benchmark.pedantic(
        lambda: run_figure("droptail", ecn=False), rounds=1, iterations=1
    )
    stats = shape_stats(scope)

    # Paper shape 1: the TCP trace hits CWND == 1 several times.
    assert stats["min"] == 1.0
    assert stats["dips_to_one"] >= 2
    assert watched.stats.timeouts >= 2
    # Paper shape 2: doubling the elephants shrinks the per-flow window.
    assert stats["mean_16_flows"] < stats["mean_8_flows"]
    # Timeouts are confirmed to be the cause of the CWND=1 dips.
    assert network.total_timeouts() > 0

    report(
        "F4: TCP behaviour (Figure 4) — elephants 8 -> 16 at t=15s",
        [
            ("paper claim", "TCP CWND hits 1 several times (timeouts)"),
            ("measured min CWND", stats["min"]),
            ("dips to CWND=1", stats["dips_to_one"]),
            ("watched-flow timeouts", watched.stats.timeouts),
            ("all-flow timeouts", network.total_timeouts()),
            ("mean CWND @8 flows", f"{stats['mean_8_flows']:.1f}"),
            ("mean CWND @16 flows", f"{stats['mean_16_flows']:.1f}"),
            ("fast retransmits", watched.stats.fast_retransmits),
            ("polls displayed", scope.polls),
        ],
    )
