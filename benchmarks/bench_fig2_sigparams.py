"""F2 — Figure 2: the signal parameters window.

Figure 2 shows the dialog opened by right-clicking a signal name, through
which color, min/max, line mode, hidden flag and the filter alpha are
edited live.  The benchmark regenerates the window, performs the full
edit cycle and times the edit+render pass.
"""

from conftest import report

from repro.core.channel import Channel
from repro.core.signal import Cell, LineMode, memory_signal
from repro.gui.windows import SignalParametersWindow


def edit_cycle():
    channel = Channel(memory_signal("CWND", Cell(12.0), min=0, max=40, color="green"))
    window = SignalParametersWindow(channel)
    window.set_color("red")
    window.set_range(0, 100)
    window.set_line(LineMode.STEP)
    window.set_filter(0.5)
    window.set_hidden(True)
    window.set_hidden(False)
    return window, window.render()


def test_fig2_signal_parameters_window(benchmark):
    window, canvas = benchmark(edit_cycle)

    values = window.values()
    assert values["color"] == "red"
    assert (values["min"], values["max"]) == (0, 100)
    assert values["filter"] == 0.5
    assert canvas.count_pixels((255, 255, 255)) > 0
    report(
        "F2: signal parameters window (Figure 2)",
        [
            ("paper artifact", "right-click dialog editing the GtkScopeSig fields"),
            ("fields edited", ", ".join(window.applied)),
            ("final state", {k: v for k, v in values.items() if k != "name"}),
            ("window size", f"{canvas.width}x{canvas.height} px"),
        ],
    )
