"""X4 — Section 4.2 ablation: unbuffered polling vs buffered push.

Section 4.2's Buffering discussion: direct polling is the scope's
natural mode, but "decoupling the data collection from the data display
has several benefits".  The cost is display latency (the delay widget);
the benefit is that no event is lost between polls.  This ablation runs
the same event-driven source (bursty events every few ms) through:

* **sample-and-hold polling** — the scope polls held state each period
  and only sees the last event per interval,
* **buffered push** — every event is enqueued with its timestamp and
  displayed ``delay`` later,
* **aggregated polling** — the Section 4.2 middle road: a Maximum
  aggregator summarises each interval.

Reported: how many distinct events reach the display, and the display
latency each mode pays.
"""

import random

from conftest import report

from repro.core.aggregate import AggregateKind
from repro.core.scope import Scope
from repro.core.signal import Cell, SignalSpec, SignalType, buffer_signal, memory_signal
from repro.eventloop.loop import MainLoop

RUN_MS = 5_000.0
PERIOD_MS = 50.0
EVENT_EVERY_MS = 5.0  # 10 events per polling interval
DELAY_MS = 100.0


def run_modes():
    loop = MainLoop()
    scope = Scope("acquisition", loop, period_ms=PERIOD_MS, delay_ms=DELAY_MS)
    held = Cell(0.0)
    scope.signal_new(memory_signal("held", held, SignalType.FLOAT))
    scope.signal_new(buffer_signal("pushed"))
    scope.signal_new(
        SignalSpec(name="agg_max", type=SignalType.FLOAT,
                   aggregate=AggregateKind.MAXIMUM)
    )
    scope.set_polling_mode(PERIOD_MS)
    scope.start_polling()

    rng = random.Random(13)
    events = {"count": 0}

    def emit(_lost) -> bool:
        value = rng.uniform(0, 100)
        events["count"] += 1
        held.value = value  # sample-and-hold state
        scope.push_sample("pushed", loop.clock.now(), value)
        scope.event("agg_max", value)
        return True

    loop.timeout_add(EVENT_EVERY_MS, emit)
    loop.run_until(RUN_MS)
    return scope, events["count"]


def test_acquisition_mode_tradeoffs(benchmark):
    scope, emitted = benchmark.pedantic(run_modes, rounds=1, iterations=1)

    held_points = len(scope.channel("held").trace)
    pushed_points = len(scope.channel("pushed").trace)
    agg_points = len(scope.channel("agg_max").trace)

    # Polling sees one value per period: ~RUN/PERIOD points, i.e. it
    # *undersamples* the event stream by ~10x.
    assert held_points <= RUN_MS / PERIOD_MS
    # Buffered push preserves every event (minus those still inside the
    # delay window at the end of the run).
    assert pushed_points >= emitted - (DELAY_MS + PERIOD_MS) / EVENT_EVERY_MS - 2
    # Aggregation also produces one point per period, but each point
    # summarises the whole interval rather than sampling an instant.
    assert agg_points <= RUN_MS / PERIOD_MS
    assert scope.buffer.stats.dropped_late == 0

    report(
        "X4: acquisition modes on one event stream (Section 4.2)",
        [
            ("events emitted", emitted),
            ("sample-and-hold points", f"{held_points} (1 per poll; undersampled)"),
            ("buffered-push points", f"{pushed_points} (every event, +{DELAY_MS:.0f} ms latency)"),
            ("aggregated (max) points", f"{agg_points} (1 summary per poll)"),
            ("display latency", f"hold/agg: <= {PERIOD_MS:.0f} ms; buffered: {DELAY_MS:.0f} ms"),
            ("paper", "buffering decouples collection from display (§4.2)"),
        ],
    )
