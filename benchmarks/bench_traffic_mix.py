"""X5 — mxtraf's "tunable mix of TCP and UDP traffic" (Section 2).

Mxtraf's stated purpose is saturating a network with a tunable TCP/UDP
mix for stress testing.  This ablation sweeps the UDP (unresponsive
CBR) share of a DropTail bottleneck and reports what happens to the
congestion-controlled TCP flows — the classic starvation curve: TCP
backs off, UDP does not, so TCP goodput falls faster than linearly as
the CBR share grows.
"""

from conftest import report

from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig

LINK_PKTS_PER_SEC = 500.0
RUN_MS = 20_000.0


def run_mix(udp_rate: float):
    engine = Engine()
    network = Network(
        engine,
        NetworkConfig(
            bandwidth_pkts_per_sec=LINK_PKTS_PER_SEC,
            prop_delay_ms=10.0,
            ack_delay_ms=10.0,
            droptail_capacity=15,
            seed=4,
        ),
    )
    mxtraf = Mxtraf(
        network, MxtrafConfig(elephants=4, udp_pkts_per_sec=udp_rate or 0.0)
    )
    if udp_rate == 0:
        mxtraf.set_udp_rate(0)
    engine.advance_to(RUN_MS)
    seconds = RUN_MS / 1000.0
    return {
        "tcp_goodput": network.total_delivered() / seconds,
        "udp_goodput": network.total_udp_delivered() / seconds,
        "timeouts": network.total_timeouts(),
    }


def test_udp_share_starves_tcp(benchmark):
    rates = (0.0, 125.0, 250.0, 375.0)
    results = benchmark.pedantic(
        lambda: {r: run_mix(r) for r in rates}, rounds=1, iterations=1
    )

    tcp = [results[r]["tcp_goodput"] for r in rates]
    # TCP goodput falls monotonically as the CBR share grows...
    assert all(a > b for a, b in zip(tcp, tcp[1:]))
    # ...and at 75 % CBR load, TCP keeps well under half its solo rate.
    assert tcp[-1] < 0.5 * tcp[0]
    # The UDP flow is unresponsive: it delivers near its share even when
    # TCP suffers.
    assert results[375.0]["udp_goodput"] > 250.0
    # The link itself stays saturated throughout.
    for r in rates:
        total = results[r]["tcp_goodput"] + results[r]["udp_goodput"]
        assert total > 0.85 * LINK_PKTS_PER_SEC

    report(
        "X5: TCP/UDP traffic mix (mxtraf's purpose, Section 2)",
        [
            (
                f"UDP {r / LINK_PKTS_PER_SEC:4.0%} of link",
                f"TCP {results[r]['tcp_goodput']:6.1f} pkt/s   "
                f"UDP {results[r]['udp_goodput']:6.1f} pkt/s   "
                f"timeouts {results[r]['timeouts']:3d}",
            )
            for r in rates
        ]
        + [("shape", "unresponsive CBR squeezes congestion-controlled TCP")],
    )
