"""X3 — Section 3.3: playback mode and the pixel-spacing rule.

"If the polling period is 50 ms, then data points in the file that are
100 ms apart will be displayed 2 pixels apart."  We record a signal at a
100 ms cadence, replay it at 50 ms and at 100 ms polling periods, and
measure the on-canvas pixel gaps; the benchmark times a full replay of
a sizeable recording (the offline-analysis path).
"""

import io
import math

from conftest import report

from repro.core.scope import Scope
from repro.core.tuples import Player, Recorder
from repro.eventloop.loop import MainLoop
from repro.gui.scope_widget import ScopeWidget

RECORD_SPACING_MS = 100.0
POINTS = 2_000


def make_recording():
    sink = io.StringIO()
    rec = Recorder(sink)
    rec.comment("playback benchmark recording")
    for i in range(POINTS):
        rec.record(i * RECORD_SPACING_MS, 50 + 40 * math.sin(i / 7.0), "wave")
    return sink.getvalue()


def replay(data: str, period_ms: float):
    loop = MainLoop()
    scope = Scope("replay", loop, width=400, height=100)
    scope.set_playback_mode(Player(io.StringIO(data)), period_ms=period_ms)
    scope.start_polling()
    loop.run_until(POINTS * RECORD_SPACING_MS + 1000)
    return scope


def pixel_gaps(scope):
    widget = ScopeWidget(scope)
    xs = [x for x, _ in widget.trace_pixels(scope.channel("wave"))]
    return sorted(set(b - a for a, b in zip(xs, xs[1:])))


def test_playback_pixel_spacing(benchmark):
    data = make_recording()

    scope_50 = benchmark.pedantic(
        lambda: replay(data, 50.0), rounds=1, iterations=1
    )
    scope_100 = replay(data, 100.0)

    assert len(scope_50.channel("wave").trace) == POINTS
    # The Section 3.3 rule: 100 ms apart at 50 ms period = 2 px apart.
    assert pixel_gaps(scope_50) == [2]
    # And at the matching period, 1 px apart.
    assert pixel_gaps(scope_100) == [1]

    report(
        "X3: playback pixel spacing (Section 3.3)",
        [
            ("recording", f"{POINTS} tuples, {RECORD_SPACING_MS:.0f} ms apart"),
            ("replayed @50ms period", f"pixel gaps {pixel_gaps(scope_50)} (paper: 2)"),
            ("replayed @100ms period", f"pixel gaps {pixel_gaps(scope_100)} (paper: 1)"),
            ("points replayed", len(scope_50.channel("wave").trace)),
        ],
    )
