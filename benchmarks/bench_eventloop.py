"""X9 — scheduler throughput: indexed MainLoop vs the seed scan loop.

The paper's claim is that the scope imposes negligible overhead on the
application it instruments; a main loop that rescans every attached
source per iteration breaks that claim once source counts grow.  This
benchmark measures:

* **X9a — dispatch throughput** at 10/100/1k/10k attached timer sources:
  the seed linear-scan loop (reproduced verbatim below) vs the indexed
  scheduler (deadline heap + id partitions).  Acceptance: >= 20x at 1k
  sources.
* **X9b — tcpsim lockstep advance rate**: events/second through
  ``Engine.drive_from`` (heap-peek lockstep) on a busy simulation, plus
  the quiet-tick rate where the early-exit peek does all the work.
* **X9c — trigger detect throughput** on a 1M-sample trace: vectorized
  ``Trigger.detect`` vs the scalar reference ``Trigger._crossings``.

Run stand-alone for machine-readable JSON (``--json PATH`` writes it,
otherwise it lands on stdout)::

    PYTHONPATH=src python benchmarks/bench_eventloop.py [--quick] [--json out.json]

or through pytest for the acceptance assertions::

    PYTHONPATH=src python -m pytest benchmarks/bench_eventloop.py -q -s
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import List, Optional

import numpy as np
from conftest import report

from repro.eventloop.clock import VirtualClock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IdleSource, IOWatch, Priority, Source, TimeoutSource
from repro.core.trigger import Edge, Trigger
from repro.tcpsim.engine import Engine


# ----------------------------------------------------------------------
# The seed MainLoop, verbatim: linear scans over one source list.
# ----------------------------------------------------------------------
class SeedMainLoop:
    def __init__(self, clock=None, max_io_poll_ms: float = 1.0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.max_io_poll_ms = float(max_io_poll_ms)
        self._sources: List[Source] = []
        self._running = False
        self.iterations = 0
        self.dispatches = 0

    def attach(self, source: Source) -> int:
        if source.attached:
            raise ValueError(f"source {source.id} already attached")
        source.attached = True
        source.destroyed = False
        if isinstance(source, TimeoutSource):
            source.start(self.clock.now())
        self._sources.append(source)
        return source.id

    def timeout_add(self, interval_ms, callback, priority=Priority.DEFAULT):
        return self.attach(TimeoutSource(interval_ms, callback, priority))

    def _ready_sources(self, now, include_idle):
        ready = [
            s for s in self._sources if not isinstance(s, IdleSource) and s.ready(now)
        ]
        if not ready and include_idle:
            ready = [s for s in self._sources if isinstance(s, IdleSource)]
        return sorted(ready, key=lambda s: (s.priority, s.id))

    def _earliest_deadline(self, now):
        deadlines = [
            d for s in self._sources if (d := s.next_deadline(now)) is not None
        ]
        return min(deadlines) if deadlines else None

    def _dispatch(self, ready, now):
        count = 0
        for src in ready:
            if src.destroyed or not src.attached:
                continue
            keep = src.dispatch(now)
            count += 1
            if (not keep or src.destroyed) and src in self._sources:
                src.attached = False
                self._sources.remove(src)
        self.dispatches += count
        return count

    def run_until(self, deadline_ms: float) -> None:
        self._running = True
        while self._running and self.clock.now() < deadline_ms:
            now = self.clock.now()
            ready = self._ready_sources(now, include_idle=False)
            if ready:
                self._dispatch(ready, now)
                continue
            next_deadline = self._earliest_deadline(now)
            has_io = any(isinstance(s, IOWatch) for s in self._sources)
            if has_io:
                step = min(
                    next_deadline if next_deadline is not None else deadline_ms,
                    now + self.max_io_poll_ms,
                    deadline_ms,
                )
            elif next_deadline is None or next_deadline > deadline_ms:
                self.clock.wait_until(deadline_ms)
                break
            else:
                step = next_deadline
            self.clock.wait_until(max(step, now))
        self._running = False


# ----------------------------------------------------------------------
# Measurements
# ----------------------------------------------------------------------
def bench_dispatch(loop_cls, n_sources: int, target_dispatches: int) -> dict:
    """Attach ``n_sources`` staggered timers, run until ~target dispatches.

    Every source gets a distinct interval so deadlines interleave instead
    of firing in shared batches — a scope wall of heterogeneous polling
    periods, where a scan loop pays its full O(n) per single dispatch.
    """
    loop = loop_cls(clock=VirtualClock())
    fired = [0]

    def cb(lost):
        fired[0] += 1
        return True

    intervals = [10.0 + i * 0.1 for i in range(n_sources)]
    for interval in intervals:
        loop.timeout_add(interval, cb)
    rate_per_ms = sum(1.0 / i for i in intervals)
    # At least three firings of the fastest timer, so a dispatch budget
    # smaller than one interval still measures real work.
    horizon = max(target_dispatches / rate_per_ms, 3.0 * min(intervals))
    t0 = time.perf_counter()
    loop.run_until(horizon)
    elapsed = time.perf_counter() - t0
    return {
        "sources": n_sources,
        "dispatches": fired[0],
        "seconds": elapsed,
        "rate_per_sec": fired[0] / elapsed if elapsed > 0 else float("inf"),
    }


def bench_lockstep(chains: int, horizon_ms: float) -> dict:
    """Events/second through the loop-driven lockstep engine."""
    engine = Engine()
    executed = [0]

    def make_chain(period_ms: float):
        def fire():
            executed[0] += 1
            engine.after(period_ms, fire)

        return fire

    for c in range(chains):
        engine.after(1.0 + (c % 7) * 0.25, make_chain(1.0 + (c % 7) * 0.25))
    loop = MainLoop(clock=VirtualClock())
    engine.drive_from(loop, period_ms=50.0)
    t0 = time.perf_counter()
    loop.run_until(horizon_ms)
    busy_s = time.perf_counter() - t0
    busy_events = executed[0]

    # Quiet ticks: an idle engine driven at 1 ms — pure peek cost.
    idle_engine = Engine()
    idle_loop = MainLoop(clock=VirtualClock())
    idle_engine.drive_from(idle_loop, period_ms=1.0)
    t0 = time.perf_counter()
    idle_loop.run_until(horizon_ms)
    quiet_s = time.perf_counter() - t0
    return {
        "busy_events": busy_events,
        "busy_events_per_sec": busy_events / busy_s,
        "quiet_ticks": int(horizon_ms),
        "quiet_ticks_per_sec": horizon_ms / quiet_s,
    }


def bench_trigger(n_samples: int) -> dict:
    """Vectorized detect vs scalar reference on a noisy repeating wave."""
    t = np.arange(n_samples, dtype=np.float64)
    rng = np.random.default_rng(7)
    wave = np.sin(2 * np.pi * t / 500.0) * 10.0 + rng.normal(0.0, 0.5, n_samples)
    trig = Trigger(0.0, Edge.EITHER, hysteresis=1.0, holdoff=50)

    t0 = time.perf_counter()
    vec_events = trig.detect(wave)
    vec_s = time.perf_counter() - t0

    wave_list = wave.tolist()
    t0 = time.perf_counter()
    scalar_events = trig._crossings(wave_list)
    scalar_s = time.perf_counter() - t0

    assert vec_events == scalar_events
    return {
        "samples": n_samples,
        "events": len(vec_events),
        "scalar_per_sec": n_samples / scalar_s,
        "vectorized_per_sec": n_samples / vec_s,
        "speedup": scalar_s / vec_s,
    }


DISPATCH_SIZES = [10, 100, 1_000, 10_000]
ACCEPTANCE_SOURCES = 1_000
ACCEPTANCE_SPEEDUP = 20.0


def run_dispatch_suite(sizes=DISPATCH_SIZES, target_dispatches: int = 2_000) -> list:
    results = []
    for n in sizes:
        # Keep the seed's O(n * iterations) cost bounded at large n.
        seed_target = min(target_dispatches, max(200, 2_000_000 // n))
        seed = bench_dispatch(SeedMainLoop, n, seed_target)
        indexed = bench_dispatch(MainLoop, n, target_dispatches)
        results.append(
            {
                "sources": n,
                "seed_rate_per_sec": seed["rate_per_sec"],
                "indexed_rate_per_sec": indexed["rate_per_sec"],
                "speedup": indexed["rate_per_sec"] / seed["rate_per_sec"],
            }
        )
    return results


def _fmt(rate: float) -> str:
    return f"{rate / 1e3:.1f} k/s"


# ----------------------------------------------------------------------
# Pytest entry points (acceptance assertions)
# ----------------------------------------------------------------------
def test_dispatch_throughput():
    results = run_dispatch_suite()
    rows = [
        (
            f"{r['sources']} sources",
            f"seed {_fmt(r['seed_rate_per_sec'])}  indexed "
            f"{_fmt(r['indexed_rate_per_sec'])}  ({r['speedup']:.1f}x)",
        )
        for r in results
    ]
    report("X9a: timer dispatch throughput (dispatches/sec)", rows)
    at_1k = next(r for r in results if r["sources"] == ACCEPTANCE_SOURCES)
    assert at_1k["speedup"] >= ACCEPTANCE_SPEEDUP, (
        f"indexed loop only {at_1k['speedup']:.1f}x faster at "
        f"{ACCEPTANCE_SOURCES} sources (acceptance: >= {ACCEPTANCE_SPEEDUP}x)"
    )


def test_lockstep_advance_rate():
    result = bench_lockstep(chains=64, horizon_ms=10_000.0)
    report(
        "X9b: tcpsim lockstep via Engine.drive_from",
        [
            ("busy advance", f"{result['busy_events_per_sec'] / 1e6:.2f} M events/s"),
            ("quiet ticks", f"{result['quiet_ticks_per_sec'] / 1e3:.0f} k ticks/s"),
        ],
    )
    assert result["busy_events"] > 0


def test_trigger_detect_1m():
    result = bench_trigger(1_000_000)
    report(
        "X9c: Trigger.detect on 1M samples",
        [
            ("scalar reference", f"{result['scalar_per_sec'] / 1e6:.2f} M samples/s"),
            ("vectorized detect", f"{result['vectorized_per_sec'] / 1e6:.2f} M samples/s"),
            ("speedup", f"{result['speedup']:.1f}x"),
        ],
    )
    assert result["speedup"] > 1.0


# ----------------------------------------------------------------------
# Stand-alone: machine-readable JSON
# ----------------------------------------------------------------------
def main(argv: Optional[List[str]] = None) -> dict:
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    json_path = None
    if "--json" in argv:
        json_path = argv[argv.index("--json") + 1]
    sizes = [ACCEPTANCE_SOURCES] if quick else DISPATCH_SIZES
    target = 1_000 if quick else 2_000
    payload = {
        "benchmark": "eventloop",
        "mode": "quick" if quick else "full",
        "acceptance": {
            "sources": ACCEPTANCE_SOURCES,
            "min_speedup": ACCEPTANCE_SPEEDUP,
        },
        "dispatch": run_dispatch_suite(sizes, target),
        "lockstep": bench_lockstep(
            chains=16 if quick else 64, horizon_ms=2_000.0 if quick else 10_000.0
        ),
        "trigger": bench_trigger(200_000 if quick else 1_000_000),
    }
    text = json.dumps(payload, indent=2)
    if json_path:
        with open(json_path, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {json_path}")
    else:
        print(text)
    return payload


if __name__ == "__main__":
    main()
