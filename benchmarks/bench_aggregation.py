"""X1 — Section 4.2 ablation: the seven event-aggregation functions.

The paper motivates aggregation as the way to watch event-driven signals
without polling per event.  This benchmark feeds the same packet-arrival
event stream (a bursty trace) to all seven aggregators and reports what
each displays for one polling interval, plus the per-event cost of the
hot path (``add``), which is what an instrumented application pays.
"""

import random

from conftest import report

from repro.core.aggregate import AggregateKind, make_aggregator

PERIOD_MS = 50.0
EVENTS_PER_INTERVAL = 200


def make_event_stream(n=EVENTS_PER_INTERVAL, seed=11):
    """Packet sizes in bytes for one polling interval (bursty)."""
    rng = random.Random(seed)
    return [rng.choice([64, 576, 1500, 1500, 1500]) for _ in range(n)]


def test_aggregation_add_throughput(benchmark):
    """Hot path: cost of reporting one interval's events."""
    events = make_event_stream()
    aggs = {kind: make_aggregator(kind) for kind in AggregateKind}

    def one_interval():
        results = {}
        for kind, agg in aggs.items():
            for value in events:
                agg.add(value)
            results[kind] = agg.collect(PERIOD_MS)
        return results

    results = benchmark(one_interval)

    total_bytes = sum(events)
    assert results[AggregateKind.SUM] == total_bytes
    assert results[AggregateKind.EVENTS] == len(events)
    assert results[AggregateKind.ANY_EVENT] == 1.0
    assert results[AggregateKind.MAXIMUM] == 1500.0
    assert results[AggregateKind.MINIMUM] == 64.0
    assert results[AggregateKind.RATE] == total_bytes / (PERIOD_MS / 1000.0)
    assert results[AggregateKind.AVERAGE] == total_bytes / len(events)

    report(
        "X1: aggregation functions on one 50 ms interval (Section 4.2)",
        [(kind.value, results[kind]) for kind in AggregateKind]
        + [
            ("events per interval", len(events)),
            ("interpretation", "rate = bandwidth B/s, average = B/packet"),
        ],
    )
