"""X2 — Section 4.4 ablation: distributed visualization delay vs drops.

The server displays remote BUFFER samples after the configured delay and
drops samples that arrive later than their slot.  The trade-off the user
tunes with the delay widget: a small delay gives a fresher display but
drops more of a laggy client's data; a large delay keeps everything at
the cost of display latency.  We sweep the delay against a fixed 60 ms
transmission latency and report acceptance rates, plus throughput of the
full decode-buffer-display path.
"""

from conftest import report

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair

LINK_LATENCY_MS = 60.0
SAMPLE_EVERY_MS = 10.0
RUN_MS = 5_000.0


def run_with_delay(delay_ms: float):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("remote", period_ms=50, delay_ms=delay_ms)
    scope.signal_new(buffer_signal("metric"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock, latency_ms=LINK_LATENCY_MS)
    server.add_client(far)
    client = ScopeClient(near, loop)
    loop.timeout_add(
        SAMPLE_EVERY_MS,
        lambda lost: client.send_sample("metric", loop.clock.now() % 100) or True,
    )
    loop.run_until(RUN_MS)
    totals = server.totals()
    displayed = len(scope.channel("metric").trace)
    return totals, displayed


def test_delay_vs_drop_tradeoff(benchmark):
    sweep = benchmark.pedantic(
        lambda: {d: run_with_delay(d) for d in (20.0, 60.0, 100.0, 200.0)},
        rounds=1,
        iterations=1,
    )

    # Delay below the link latency: everything arrives late and drops.
    tight_totals, tight_displayed = sweep[20.0]
    assert tight_totals["dropped_late"] == tight_totals["received"]
    assert tight_displayed == 0
    # Delay comfortably above the latency: nothing drops.
    loose_totals, loose_displayed = sweep[200.0]
    assert loose_totals["dropped_late"] == 0
    assert loose_displayed > 400
    # Monotone: larger delay never drops more.
    drops = [sweep[d][0]["dropped_late"] for d in (20.0, 60.0, 100.0, 200.0)]
    assert drops == sorted(drops, reverse=True)

    report(
        "X2: display delay vs late drops (Section 4.4, 60 ms link)",
        [
            (
                f"delay {d:5.0f} ms",
                f"received {sweep[d][0]['received']:4d}  "
                f"dropped {sweep[d][0]['dropped_late']:4d}  "
                f"displayed {sweep[d][1]:4d}",
            )
            for d in (20.0, 60.0, 100.0, 200.0)
        ]
        + [("paper rule", "data arriving after the delay is dropped immediately")],
    )
