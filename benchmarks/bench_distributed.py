"""X2 and X14 — distributed-plane benchmarks.

X2 (Section 4.4 ablation): the server displays remote BUFFER samples
after the configured delay and drops samples that arrive later than
their slot.  The trade-off the user tunes with the delay widget: a small
delay gives a fresher display but drops more of a laggy client's data; a
large delay keeps everything at the cost of display latency.  We sweep
the delay against a fixed 60 ms transmission latency and report
acceptance rates, plus throughput of the full decode-buffer-display
path.

X14 (process-model scaling): ingest throughput of
:class:`ProcessShardedScopeManager` — real worker processes fed DELIVER
frames over socketpairs.  X14a sweeps 1 → 2 → 4 workers at a fixed
offered load; X14b compares the shared-memory column ring against the
plain socketpair wire at 4 workers.  Speedups track the machine's core
count (``os.cpu_count()`` is emitted alongside every row — on a 1-core
container all three X14a points post the same rate, by design).  Gated
behind ``REPRO_BENCH=1`` like the regression gates; carries the
``distributed`` marker because it forks real workers.
"""

import os
import time

import numpy as np
import pytest
from conftest import report

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import (
    ProcessShardedScopeManager,
    ScopeClient,
    ScopeServer,
    memory_pair,
)

LINK_LATENCY_MS = 60.0
SAMPLE_EVERY_MS = 10.0
RUN_MS = 5_000.0


def run_with_delay(delay_ms: float):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("remote", period_ms=50, delay_ms=delay_ms)
    scope.signal_new(buffer_signal("metric"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock, latency_ms=LINK_LATENCY_MS)
    server.add_client(far)
    client = ScopeClient(near, loop)
    loop.timeout_add(
        SAMPLE_EVERY_MS,
        lambda lost: client.send_sample("metric", loop.clock.now() % 100) or True,
    )
    loop.run_until(RUN_MS)
    totals = server.totals()
    displayed = len(scope.channel("metric").trace)
    return totals, displayed


def test_delay_vs_drop_tradeoff(benchmark):
    sweep = benchmark.pedantic(
        lambda: {d: run_with_delay(d) for d in (20.0, 60.0, 100.0, 200.0)},
        rounds=1,
        iterations=1,
    )

    # Delay below the link latency: everything arrives late and drops.
    tight_totals, tight_displayed = sweep[20.0]
    assert tight_totals["dropped_late"] == tight_totals["received"]
    assert tight_displayed == 0
    # Delay comfortably above the latency: nothing drops.
    loose_totals, loose_displayed = sweep[200.0]
    assert loose_totals["dropped_late"] == 0
    assert loose_displayed > 400
    # Monotone: larger delay never drops more.
    drops = [sweep[d][0]["dropped_late"] for d in (20.0, 60.0, 100.0, 200.0)]
    assert drops == sorted(drops, reverse=True)

    report(
        "X2: display delay vs late drops (Section 4.4, 60 ms link)",
        [
            (
                f"delay {d:5.0f} ms",
                f"received {sweep[d][0]['received']:4d}  "
                f"dropped {sweep[d][0]['dropped_late']:4d}  "
                f"displayed {sweep[d][1]:4d}",
            )
            for d in (20.0, 60.0, 100.0, 200.0)
        ]
        + [("paper rule", "data arriving after the delay is dropped immediately")],
    )


# -- X14: multi-process shard-worker ingest scaling -----------------------

X14_SIGNALS = [f"sig-{i:02d}" for i in range(32)]
X14_FANOUT = 3  # scopes per worker sharing every signal: weights child work
X14_SAMPLES = 200_000
X14_BATCH = 512

x14_marks = pytest.mark.skipif(
    not os.environ.get("REPRO_BENCH"),
    reason="process-scaling benchmark is opt-in: set REPRO_BENCH=1",
)


def _x14_factory(manager, shard_id):
    # Several scopes subscribe to every signal, so each delivered sample
    # is ingested FANOUT times in the child: the work we are scaling out
    # lives on the worker side, not in the router's encode loop.
    for k in range(X14_FANOUT):
        scope = manager.scope_new(
            f"scope-{shard_id}-{k}", period_ms=50, delay_ms=150.0
        )
        for name in X14_SIGNALS:
            scope.signal_new(buffer_signal(name))
        scope.set_polling_mode(50)
        scope.start_polling()


def bench_process_ingest(
    workers: int, total_samples: int = X14_SAMPLES, use_shm: bool = False
) -> dict:
    """Offer ``total_samples`` round-robin across signals, drain, time it.

    The clock never advances, so every sample lands at its slot (nothing
    drops) and the measurement is pure ingest: router encode + wire (or
    shm ring) + child decode + FANOUT-way buffer insert.  The drain is
    inside the timed window — the rate is end-to-end samples per wall
    second, not enqueue speed.
    """
    rng = np.random.default_rng(7)
    values = rng.normal(size=X14_BATCH)
    times = np.zeros(X14_BATCH)
    with ProcessShardedScopeManager(
        shards=workers, scope_factory=_x14_factory, use_shm=use_shm
    ) as mgr:
        pushed = 0
        batch_i = 0
        t0 = time.perf_counter()
        while pushed < total_samples:
            name = X14_SIGNALS[batch_i % len(X14_SIGNALS)]
            pushed += mgr.push_samples(name, times, values)
            batch_i += 1
        mgr.drain(timeout_s=600.0)
        wall = time.perf_counter() - t0
        totals = mgr.totals()
        fallbacks = sum(
            h.ring.fallbacks
            for h in (mgr.handle_of(i) for i in mgr.shard_ids)
            if h.ring is not None
        )
    assert totals["accepted"] == pushed, totals
    return {
        "workers": workers,
        "use_shm": use_shm,
        "samples": pushed,
        "wall_seconds": wall,
        "rate_per_sec": pushed / wall,
        "child_inserts": pushed * X14_FANOUT,
        "ring_fallbacks": fallbacks,
        "cpu_count": os.cpu_count(),
    }


@pytest.mark.benchmark
@pytest.mark.distributed
@x14_marks
def test_x14a_worker_scaling(benchmark):
    sweep = benchmark.pedantic(
        lambda: {w: bench_process_ingest(w) for w in (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    for w, result in sweep.items():
        assert result["samples"] == X14_SAMPLES + (-X14_SAMPLES % X14_BATCH)
        assert result["rate_per_sec"] > 0
    report(
        f"X14a: process-worker ingest scaling ({os.cpu_count()} cpu(s))",
        [
            (
                f"{w} worker(s)",
                f"{sweep[w]['rate_per_sec']:>12,.0f} samples/s  "
                f"(x{sweep[w]['rate_per_sec'] / sweep[1]['rate_per_sec']:.2f})",
            )
            for w in (1, 2, 4)
        ]
        + [("note", "speedup tracks cores; 1-core machines post flat rates")],
    )


@pytest.mark.benchmark
@pytest.mark.distributed
@x14_marks
def test_x14b_shm_vs_socketpair(benchmark):
    sweep = benchmark.pedantic(
        lambda: {
            mode: bench_process_ingest(4, use_shm=use_shm)
            for mode, use_shm in (("socketpair", False), ("shm-ring", True))
        },
        rounds=1,
        iterations=1,
    )
    assert sweep["socketpair"]["samples"] == sweep["shm-ring"]["samples"]
    report(
        "X14b: 4-worker transport — shm column ring vs socketpair",
        [
            (
                mode,
                f"{r['rate_per_sec']:>12,.0f} samples/s  "
                f"ring_fallbacks {r['ring_fallbacks']}",
            )
            for mode, r in sweep.items()
        ],
    )
