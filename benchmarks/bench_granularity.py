"""E3 — Section 4.5: polling granularity and lost timeouts.

Two claims to regenerate:

1. "gscope ... is currently limited to this polling interval and has a
   maximum frequency of 100 Hz": with the kernel timer at 10 ms, asking
   for 1 ms or 5 ms polling still yields at most 100 polls per second;
   with a 1 ms tick (the soft-timers future-work direction) the same
   request reaches 1000 Hz.
2. "Gscope keeps track of lost timeouts and advances the scope refresh
   appropriately": under injected scheduling latency, polls are lost
   but column accounting keeps the time axis truthful.
"""

import random

from conftest import report

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop

RUN_MS = 10_000.0


def polls_per_second(tick_ms: float, requested_period_ms: float) -> float:
    clock = KernelTimerModel(VirtualClock(), tick_ms=tick_ms)
    loop = MainLoop(clock=clock)
    scope = Scope("granularity", loop, period_ms=requested_period_ms)
    scope.signal_new(memory_signal("x", Cell(1)))
    scope.start_polling()
    loop.run_until(RUN_MS)
    return scope.polls / (RUN_MS / 1000.0)


def lost_timeout_run(load_latency_ms: float):
    rng = random.Random(42)

    def latency(_wakeup: float) -> float:
        # Heavy-load model: occasional large scheduling delays.
        return rng.choice([0.0, 0.0, 0.0, load_latency_ms])

    clock = KernelTimerModel(VirtualClock(), tick_ms=10.0, latency=latency)
    loop = MainLoop(clock=clock)
    scope = Scope("lossy", loop, period_ms=10.0)
    scope.signal_new(memory_signal("x", Cell(1)))
    scope.start_polling()
    loop.run_until(RUN_MS)
    return scope


def run_experiment():
    freq = {
        (10.0, 1.0): polls_per_second(10.0, 1.0),
        (10.0, 5.0): polls_per_second(10.0, 5.0),
        (10.0, 10.0): polls_per_second(10.0, 10.0),
        (10.0, 50.0): polls_per_second(10.0, 50.0),
        (1.0, 1.0): polls_per_second(1.0, 1.0),
    }
    lossy = lost_timeout_run(load_latency_ms=45.0)
    return freq, lossy


def test_polling_granularity_and_lost_timeouts(benchmark):
    freq, lossy = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    # Claim 1: the 10 ms tick caps everything at ~100 Hz.
    assert freq[(10.0, 1.0)] <= 101.0
    assert freq[(10.0, 5.0)] <= 101.0
    assert freq[(10.0, 10.0)] <= 101.0
    assert freq[(10.0, 50.0)] <= 21.0
    # A fine-grained kernel (soft timers) lifts the ceiling.
    assert freq[(1.0, 1.0)] > 500.0

    # Claim 2: under load, timeouts are lost but accounted for.
    assert lossy.lost_timeouts > 0
    expected_columns = RUN_MS / lossy.period_ms
    assert abs(lossy.column - expected_columns) <= 2

    report(
        "E3: polling granularity (Section 4.5)",
        [
            ("paper", "10 ms kernel tick -> max 100 Hz polling"),
            ("1 ms request @10ms tick", f"{freq[(10.0, 1.0)]:.1f} Hz"),
            ("5 ms request @10ms tick", f"{freq[(10.0, 5.0)]:.1f} Hz"),
            ("10 ms request @10ms tick", f"{freq[(10.0, 10.0)]:.1f} Hz"),
            ("50 ms request @10ms tick", f"{freq[(10.0, 50.0)]:.1f} Hz"),
            ("1 ms request @1ms tick", f"{freq[(1.0, 1.0)]:.1f} Hz (soft-timers future work)"),
            ("lost timeouts under load", lossy.lost_timeouts),
            ("polls completed", lossy.polls),
            ("column (time axis) kept", f"{lossy.column} of {RUN_MS / lossy.period_ms:.0f}"),
        ],
    )
