"""X6 — SACK vs NewReno loss recovery (the paper's debugging anecdote).

Section 2 recounts the kind of bug gscope was built to see: a
low-latency TCP variant "initially showed significant unexpected
timeouts that we finally traced to an interaction with the SACK
implementation."  Timeouts-vs-SACK is therefore a behaviour the
reproduction's TCP substrate must actually exhibit, not just mention.

This ablation runs the same contended DropTail workload with SACK off
(NewReno's one-hole-per-RTT partial-ACK recovery) and on (scoreboard
repair of every reported hole).  Expected shape: in the multi-loss
regime SACK converts most RTOs into fast recoveries; it cannot help the
tiny-window RTOs that lack the duplicate ACKs to begin with.
"""

from conftest import report

from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig

SEEDS = (2, 3, 4)
RUN_MS = 30_000.0


def run_one(sack: bool, seed: int):
    engine = Engine()
    network = Network(
        engine,
        NetworkConfig(
            bandwidth_pkts_per_sec=500.0,
            prop_delay_ms=10.0,
            ack_delay_ms=10.0,
            droptail_capacity=20,
            sack=sack,
            seed=seed,
        ),
    )
    Mxtraf(network, MxtrafConfig(elephants=4, seed=seed))
    engine.advance_to(RUN_MS)
    return {
        "timeouts": network.total_timeouts(),
        "fast_recoveries": sum(
            f.stats.fast_retransmits for f in network.flows.values()
        ),
        "goodput": network.total_delivered() / (RUN_MS / 1000.0),
    }


def test_sack_reduces_timeouts(benchmark):
    results = benchmark.pedantic(
        lambda: {
            (sack, seed): run_one(sack, seed)
            for sack in (False, True)
            for seed in SEEDS
        },
        rounds=1,
        iterations=1,
    )

    newreno_timeouts = sum(results[(False, s)]["timeouts"] for s in SEEDS)
    sack_timeouts = sum(results[(True, s)]["timeouts"] for s in SEEDS)
    # Headline shape: SACK avoids most multi-loss RTOs.
    assert sack_timeouts < newreno_timeouts
    # And never makes a seed meaningfully worse.
    for seed in SEEDS:
        assert (
            results[(True, seed)]["timeouts"]
            <= results[(False, seed)]["timeouts"] + 1
        )
    # Loss recovery still happens — via fast recovery instead of RTO.
    assert all(results[(True, s)]["fast_recoveries"] > 0 for s in SEEDS)

    rows = []
    for seed in SEEDS:
        nr, sk = results[(False, seed)], results[(True, seed)]
        rows.append(
            (
                f"seed {seed}",
                f"NewReno: {nr['timeouts']:3d} RTOs, {nr['goodput']:5.0f} pkt/s   "
                f"SACK: {sk['timeouts']:3d} RTOs, {sk['goodput']:5.0f} pkt/s",
            )
        )
    report(
        "X6: SACK vs NewReno under multi-loss congestion (Section 2 anecdote)",
        rows
        + [
            ("total RTOs", f"NewReno {newreno_timeouts} -> SACK {sack_timeouts}"),
            ("shape", "SACK repairs multi-loss windows without timing out"),
        ],
    )
