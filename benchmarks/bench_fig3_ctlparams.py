"""F3 — Figure 3: the application/control parameters window.

Figure 3 shows two application-wide parameters displayed for reading and
writing.  The benchmark builds the mxtraf control-parameter store (the
same two knobs the paper's demo exposes: elephant count and mouse rate),
drives a write round trip through the window and times it — this is the
"modify system behavior in real-time" path.
"""

from conftest import report

from repro.gui.windows import ControlParametersWindow
from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig


def build():
    engine = Engine()
    network = Network(engine, NetworkConfig(bandwidth_pkts_per_sec=500))
    mxtraf = Mxtraf(network, MxtrafConfig(elephants=8))
    store = mxtraf.control_parameters()
    window = ControlParametersWindow(store, title="Application Parameters")
    return mxtraf, window


def test_fig3_control_parameters_window(benchmark):
    mxtraf, window = build()

    def round_trip():
        window.set("elephants", 16)
        window.step_down("elephants", 4)
        window.set("mice_per_sec", 2.0)
        window.set("mice_per_sec", 0.0)
        return window.render()

    canvas = benchmark(round_trip)

    assert mxtraf.elephants == 12  # 16 stepped down by 4
    rows = window.rows()
    assert rows["elephants"] == 12.0
    report(
        "F3: control parameters window (Figure 3)",
        [
            ("paper artifact", "window with two application parameters, read+write"),
            ("parameters", list(rows)),
            ("write reached app", f"mxtraf.elephants == {mxtraf.elephants}"),
            ("window size", f"{canvas.width}x{canvas.height} px"),
        ],
    )
