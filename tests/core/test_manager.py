"""Tests for ScopeManager (multiple scopes on one loop)."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.scope import ScopeError
from repro.core.signal import Cell, buffer_signal, memory_signal
from repro.eventloop.loop import MainLoop


class TestRegistry:
    def test_create_and_lookup(self):
        mgr = ScopeManager()
        scope = mgr.scope_new("a", width=100, height=50)
        assert mgr.scope("a") is scope
        assert "a" in mgr
        assert len(mgr) == 1

    def test_duplicate_name_rejected(self):
        mgr = ScopeManager()
        mgr.scope_new("a")
        with pytest.raises(ScopeError):
            mgr.scope_new("a")

    def test_unknown_scope(self):
        with pytest.raises(ScopeError):
            ScopeManager().scope("nope")

    def test_remove_stops_polling(self):
        mgr = ScopeManager()
        scope = mgr.scope_new("a")
        scope.start_polling()
        mgr.scope_remove("a")
        assert "a" not in mgr
        assert not scope.polling
        assert mgr.loop.sources == []

    def test_shared_loop(self):
        loop = MainLoop()
        mgr = ScopeManager(loop)
        a = mgr.scope_new("a")
        b = mgr.scope_new("b")
        assert a.loop is loop and b.loop is loop


class TestCoordination:
    def test_start_stop_all(self):
        mgr = ScopeManager()
        scopes = [mgr.scope_new(n) for n in "abc"]
        mgr.start_all()
        assert all(s.polling for s in scopes)
        mgr.stop_all()
        assert not any(s.polling for s in scopes)

    def test_push_fans_out_to_carrying_scopes(self):
        """One remote stream feeds several displays (Section 4.4)."""
        mgr = ScopeManager()
        a = mgr.scope_new("a")
        b = mgr.scope_new("b")
        c = mgr.scope_new("c")
        a.signal_new(buffer_signal("latency"))
        b.signal_new(buffer_signal("latency"))
        c.signal_new(memory_signal("latency", Cell()))  # unbuffered: skipped
        accepted = mgr.push_sample("latency", time_ms=0.0, value=5.0)
        assert accepted == 2
        assert len(a.buffer) == 1 and len(b.buffer) == 1 and len(c.buffer) == 0

    def test_push_unknown_signal_accepted_nowhere(self):
        mgr = ScopeManager()
        mgr.scope_new("a")
        assert mgr.push_sample("ghost", 0, 1.0) == 0

    def test_run_for_drives_all_scopes(self):
        mgr = ScopeManager()
        a = mgr.scope_new("a", period_ms=50)
        b = mgr.scope_new("b", period_ms=100)
        a.signal_new(memory_signal("x", Cell(1)))
        b.signal_new(memory_signal("y", Cell(2)))
        mgr.start_all()
        mgr.run_for(1000)
        assert a.polls > b.polls > 0


class TestTapListSafety:
    """Taps mutate their own membership from inside the push path.

    A capture writer closing, a LiveQuery quarantining, a subscriber
    detaching — all remove a tap *while the manager is iterating its tap
    list*.  The copy-on-write tuple list guarantees the in-flight push
    still invokes every sibling exactly once.
    """

    def make_rig(self):
        manager = ScopeManager()
        scope = manager.scope_new("rig", delay_ms=1e12)
        scope.signal_new(buffer_signal("x"))
        return manager

    def test_tap_removing_itself_mid_push_keeps_siblings(self):
        manager = self.make_rig()
        calls = []

        def make_tap(label, self_remove=False):
            def tap(name, times, values, now_ms):
                calls.append(label)
                if self_remove:
                    manager.remove_tap(tap)

            return tap

        first = make_tap("first", self_remove=True)
        manager.add_tap(first)
        manager.add_tap(make_tap("second"))
        manager.add_tap(make_tap("third"))
        manager.push_samples("x", [1.0], [1.0])
        # The removing tap must not skip or double-invoke its siblings.
        assert calls == ["first", "second", "third"]
        calls.clear()
        manager.push_samples("x", [2.0], [2.0])
        assert calls == ["second", "third"]

    def test_tap_adding_a_tap_mid_push_defers_to_next_push(self):
        manager = self.make_rig()
        calls = []

        def late(name, times, values, now_ms):
            calls.append("late")

        def adder(name, times, values, now_ms):
            calls.append("adder")
            if "late" not in calls:
                manager.add_tap(late)

        manager.add_tap(adder)
        manager.push_samples("x", [1.0], [1.0])
        assert calls == ["adder"]  # snapshot: the new tap waits its turn
        manager.push_samples("x", [2.0], [2.0])
        assert calls == ["adder", "adder", "late"]

    def test_scope_tap_removing_itself_mid_push_keeps_siblings(self):
        manager = ScopeManager()
        scope = manager.scope_new("rig", delay_ms=1e12)
        scope.signal_new(buffer_signal("x"))
        calls = []

        def first(name, times, values, now_ms):
            calls.append("first")
            scope.remove_tap(first)

        def second(name, times, values, now_ms):
            calls.append("second")

        scope.add_tap(first)
        scope.add_tap(second)
        scope.push_samples("x", [1.0], [1.0])
        assert calls == ["first", "second"]
