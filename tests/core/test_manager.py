"""Tests for ScopeManager (multiple scopes on one loop)."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.scope import ScopeError
from repro.core.signal import Cell, buffer_signal, memory_signal
from repro.eventloop.loop import MainLoop


class TestRegistry:
    def test_create_and_lookup(self):
        mgr = ScopeManager()
        scope = mgr.scope_new("a", width=100, height=50)
        assert mgr.scope("a") is scope
        assert "a" in mgr
        assert len(mgr) == 1

    def test_duplicate_name_rejected(self):
        mgr = ScopeManager()
        mgr.scope_new("a")
        with pytest.raises(ScopeError):
            mgr.scope_new("a")

    def test_unknown_scope(self):
        with pytest.raises(ScopeError):
            ScopeManager().scope("nope")

    def test_remove_stops_polling(self):
        mgr = ScopeManager()
        scope = mgr.scope_new("a")
        scope.start_polling()
        mgr.scope_remove("a")
        assert "a" not in mgr
        assert not scope.polling
        assert mgr.loop.sources == []

    def test_shared_loop(self):
        loop = MainLoop()
        mgr = ScopeManager(loop)
        a = mgr.scope_new("a")
        b = mgr.scope_new("b")
        assert a.loop is loop and b.loop is loop


class TestCoordination:
    def test_start_stop_all(self):
        mgr = ScopeManager()
        scopes = [mgr.scope_new(n) for n in "abc"]
        mgr.start_all()
        assert all(s.polling for s in scopes)
        mgr.stop_all()
        assert not any(s.polling for s in scopes)

    def test_push_fans_out_to_carrying_scopes(self):
        """One remote stream feeds several displays (Section 4.4)."""
        mgr = ScopeManager()
        a = mgr.scope_new("a")
        b = mgr.scope_new("b")
        c = mgr.scope_new("c")
        a.signal_new(buffer_signal("latency"))
        b.signal_new(buffer_signal("latency"))
        c.signal_new(memory_signal("latency", Cell()))  # unbuffered: skipped
        accepted = mgr.push_sample("latency", time_ms=0.0, value=5.0)
        assert accepted == 2
        assert len(a.buffer) == 1 and len(b.buffer) == 1 and len(c.buffer) == 0

    def test_push_unknown_signal_accepted_nowhere(self):
        mgr = ScopeManager()
        mgr.scope_new("a")
        assert mgr.push_sample("ghost", 0, 1.0) == 0

    def test_run_for_drives_all_scopes(self):
        mgr = ScopeManager()
        a = mgr.scope_new("a", period_ms=50)
        b = mgr.scope_new("b", period_ms=100)
        a.signal_new(memory_signal("x", Cell(1)))
        b.signal_new(memory_signal("y", Cell(2)))
        mgr.start_all()
        mgr.run_for(1000)
        assert a.polls > b.polls > 0
