"""Tests for the Section 4.2 event-aggregation functions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.aggregate import (
    AggregateKind,
    AnyEvent,
    Average,
    Events,
    Maximum,
    Minimum,
    Rate,
    Sum,
    make_aggregator,
)

values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50
)


class TestFactory:
    def test_all_seven_kinds_constructible(self):
        for kind in AggregateKind:
            agg = make_aggregator(kind)
            assert agg.kind is kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            make_aggregator("nope")


class TestEmptyIntervals:
    def test_max_min_average_return_none(self):
        for cls in (Maximum, Minimum, Average):
            assert cls().collect(50.0) is None

    def test_sum_rate_events_any_have_empty_values(self):
        assert Sum().collect(50.0) == 0.0
        assert Rate().collect(50.0) == 0.0
        assert Events().collect(50.0) == 0.0
        assert AnyEvent().collect(50.0) == 0.0


class TestPaperExamples:
    def test_maximum_latency(self):
        agg = Maximum()
        for latency in [12.0, 80.0, 30.0]:
            agg.add(latency)
        assert agg.collect(50.0) == 80.0

    def test_minimum_latency(self):
        agg = Minimum()
        for latency in [12.0, 80.0, 30.0]:
            agg.add(latency)
        assert agg.collect(50.0) == 12.0

    def test_sum_bytes_received(self):
        agg = Sum()
        for nbytes in [1500, 1500, 576]:
            agg.add(nbytes)
        assert agg.collect(50.0) == 3576.0

    def test_rate_is_bytes_per_second(self):
        """Rate = sum / polling period, e.g. bandwidth in bytes/second."""
        agg = Rate()
        for nbytes in [1000, 1000]:
            agg.add(nbytes)
        # 2000 bytes in 50 ms = 40_000 bytes/s.
        assert agg.collect(50.0) == pytest.approx(40_000.0)

    def test_average_bytes_per_packet(self):
        agg = Average()
        for nbytes in [1000, 2000, 600]:
            agg.add(nbytes)
        assert agg.collect(50.0) == pytest.approx(1200.0)

    def test_events_counts_packets(self):
        agg = Events()
        for _ in range(7):
            agg.add()
        assert agg.collect(50.0) == 7.0

    def test_any_event_is_boolean(self):
        agg = AnyEvent()
        agg.add(123.0)
        assert agg.collect(50.0) == 1.0
        assert agg.collect(50.0) == 0.0


class TestCollectSemantics:
    def test_collect_resets_for_next_interval(self):
        agg = Sum()
        agg.add(5.0)
        assert agg.collect(50.0) == 5.0
        assert agg.collect(50.0) == 0.0

    def test_pending_counter(self):
        agg = Maximum()
        assert agg.pending == 0
        agg.add(1.0)
        agg.add(2.0)
        assert agg.pending == 2
        agg.collect(50.0)
        assert agg.pending == 0

    def test_reset_discards_events(self):
        agg = Sum()
        agg.add(5.0)
        agg.reset()
        assert agg.collect(50.0) == 0.0

    def test_rate_rejects_bad_period(self):
        agg = Rate()
        agg.add(1.0)
        with pytest.raises(ValueError):
            agg.collect(0.0)


class TestAlgebraicIdentities:
    @given(values, st.floats(min_value=1.0, max_value=10_000.0))
    def test_sum_equals_average_times_events(self, xs, period):
        s, a, e = Sum(), Average(), Events()
        for x in xs:
            s.add(x)
            a.add(x)
            e.add(x)
        total = s.collect(period)
        mean = a.collect(period)
        count = e.collect(period)
        assert total == pytest.approx(mean * count, rel=1e-9, abs=1e-6)

    @given(values, st.floats(min_value=1.0, max_value=10_000.0))
    def test_rate_equals_sum_over_period_seconds(self, xs, period):
        s, r = Sum(), Rate()
        for x in xs:
            s.add(x)
            r.add(x)
        assert r.collect(period) == pytest.approx(
            s.collect(period) / (period / 1000.0), rel=1e-9, abs=1e-6
        )

    @given(values)
    def test_min_le_average_le_max(self, xs):
        mx, mn, avg = Maximum(), Minimum(), Average()
        for x in xs:
            mx.add(x)
            mn.add(x)
            avg.add(x)
        lo = mn.collect(50.0)
        hi = mx.collect(50.0)
        mid = avg.collect(50.0)
        assert lo - 1e-6 <= mid <= hi + 1e-6

    @given(values)
    def test_any_event_iff_events_positive(self, xs):
        e, any_ = Events(), AnyEvent()
        for x in xs:
            e.add(x)
            any_.add(x)
        assert (e.collect(50.0) > 0) == (any_.collect(50.0) == 1.0)
