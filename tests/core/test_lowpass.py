"""Tests for the Section 3.1 low-pass filter."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.lowpass import LowPassFilter

finite_floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestValidation:
    def test_alpha_bounds(self):
        with pytest.raises(ValueError):
            LowPassFilter(-0.01)
        with pytest.raises(ValueError):
            LowPassFilter(1.01)

    def test_non_finite_input_rejected(self):
        f = LowPassFilter(0.5)
        with pytest.raises(ValueError):
            f.apply(math.nan)
        with pytest.raises(ValueError):
            f.apply(math.inf)


class TestBehaviour:
    def test_alpha_zero_is_identity(self):
        f = LowPassFilter(0.0)
        assert f.apply(5.0) == 5.0
        assert f.apply(-3.0) == -3.0

    def test_first_sample_initialises_state(self):
        f = LowPassFilter(0.9)
        assert f.apply(10.0) == 10.0  # no startup transient from zero

    def test_recurrence_matches_paper_equation(self):
        """y_i = alpha*y_{i-1} + (1-alpha)*x_i (Section 3.1)."""
        alpha = 0.8
        f = LowPassFilter(alpha)
        y = f.apply(10.0)
        for x in [0.0, 4.0, -2.0, 100.0]:
            expected = alpha * y + (1 - alpha) * x
            y = f.apply(x)
            assert y == pytest.approx(expected)

    def test_alpha_one_holds_first_value(self):
        f = LowPassFilter(1.0)
        f.apply(7.0)
        for x in [0.0, 100.0, -5.0]:
            assert f.apply(x) == 7.0

    def test_reset_forgets_state(self):
        f = LowPassFilter(0.9)
        f.apply(100.0)
        f.reset()
        assert f.value is None
        assert f.apply(1.0) == 1.0

    def test_value_before_any_sample_is_none(self):
        assert LowPassFilter(0.5).value is None

    def test_callable_alias(self):
        f = LowPassFilter(0.0)
        assert f(3.0) == 3.0

    def test_apply_all(self):
        f = LowPassFilter(0.0)
        assert f.apply_all([1, 2, 3]) == [1.0, 2.0, 3.0]

    def test_step_response_converges(self):
        f = LowPassFilter(0.9)
        f.apply(0.0)
        out = 0.0
        for _ in range(300):
            out = f.apply(1.0)
        assert out == pytest.approx(1.0, abs=1e-10)


class TestSettling:
    def test_settling_samples_alpha_zero(self):
        assert LowPassFilter(0.0).settling_samples() == 0

    def test_settling_samples_alpha_one_never(self):
        with pytest.raises(ValueError):
            LowPassFilter(1.0).settling_samples()

    def test_settling_estimate_is_sound(self):
        f = LowPassFilter(0.9)
        n = f.settling_samples(fraction=0.01)
        f.apply(0.0)
        out = 0.0
        for _ in range(n):
            out = f.apply(1.0)
        assert abs(1.0 - out) <= 0.011

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            LowPassFilter(0.5).settling_samples(fraction=0.0)
        with pytest.raises(ValueError):
            LowPassFilter(0.5).settling_samples(fraction=1.0)


class TestProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.lists(finite_floats, min_size=1, max_size=100),
    )
    def test_output_bounded_by_input_range(self, alpha, xs):
        """A convex-combination filter can never overshoot its inputs."""
        f = LowPassFilter(alpha)
        outs = f.apply_all(xs)
        lo, hi = min(xs), max(xs)
        for y in outs:
            assert lo - 1e-6 <= y <= hi + 1e-6

    @given(st.lists(finite_floats, min_size=1, max_size=100))
    def test_alpha_zero_reproduces_input(self, xs):
        f = LowPassFilter(0.0)
        assert f.apply_all(xs) == [float(x) for x in xs]

    @given(
        st.floats(min_value=0.0, max_value=0.99),
        finite_floats,
    )
    def test_constant_input_is_fixed_point(self, alpha, c):
        f = LowPassFilter(alpha)
        for _ in range(10):
            out = f.apply(c)
        assert out == pytest.approx(c, rel=1e-9, abs=1e-9)
