"""Tests for the scope-wide sample buffer (delay + late-drop rules)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.buffer import SampleBuffer


class TestValidation:
    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SampleBuffer(delay_ms=-1)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            SampleBuffer(capacity=0)

    def test_set_delay_validates(self):
        buf = SampleBuffer()
        with pytest.raises(ValueError):
            buf.set_delay(-5)


class TestDelaySemantics:
    def test_sample_not_due_before_delay(self):
        buf = SampleBuffer(delay_ms=100)
        buf.push("s", time_ms=50, value=1.0, now_ms=50)
        assert buf.pop_due(now_ms=149) == []

    def test_sample_due_at_time_plus_delay(self):
        buf = SampleBuffer(delay_ms=100)
        buf.push("s", time_ms=50, value=1.0, now_ms=50)
        due = buf.pop_due(now_ms=150)
        assert len(due) == 1
        assert due[0].value == 1.0

    def test_zero_delay_is_immediately_due(self):
        buf = SampleBuffer(delay_ms=0)
        buf.push("s", time_ms=10, value=1.0, now_ms=10)
        assert len(buf.pop_due(now_ms=10)) == 1

    def test_pop_is_destructive(self):
        buf = SampleBuffer()
        buf.push("s", 0, 1.0, 0)
        buf.pop_due(10)
        assert buf.pop_due(10) == []


class TestLateDrop:
    def test_late_sample_dropped(self):
        """Section 4.4: data arriving after the delay is dropped."""
        buf = SampleBuffer(delay_ms=100)
        accepted = buf.push("s", time_ms=0, value=1.0, now_ms=101)
        assert accepted is False
        assert buf.stats.dropped_late == 1
        assert len(buf) == 0

    def test_exactly_on_time_accepted(self):
        buf = SampleBuffer(delay_ms=100)
        assert buf.push("s", time_ms=0, value=1.0, now_ms=100) is True

    def test_larger_delay_tolerates_more_lag(self):
        tight = SampleBuffer(delay_ms=10)
        loose = SampleBuffer(delay_ms=500)
        assert tight.push("s", 0, 1.0, now_ms=100) is False
        assert loose.push("s", 0, 1.0, now_ms=100) is True


class TestOrdering:
    def test_pop_returns_time_order(self):
        buf = SampleBuffer()
        buf.push("a", 30, 3.0, 0)
        buf.push("a", 10, 1.0, 0)
        buf.push("a", 20, 2.0, 0)
        assert [s.value for s in buf.pop_due(100)] == [1.0, 2.0, 3.0]

    def test_equal_times_keep_push_order(self):
        buf = SampleBuffer()
        buf.push("a", 10, 1.0, 0)
        buf.push("a", 10, 2.0, 0)
        assert [s.value for s in buf.pop_due(100)] == [1.0, 2.0]

    def test_grouped_by_name(self):
        buf = SampleBuffer()
        buf.push("x", 10, 1.0, 0)
        buf.push("y", 20, 2.0, 0)
        buf.push("x", 30, 3.0, 0)
        grouped = buf.pop_due_by_name(100)
        assert [s.value for s in grouped["x"]] == [1.0, 3.0]
        assert [s.value for s in grouped["y"]] == [2.0]

    def test_partial_pop_leaves_rest(self):
        buf = SampleBuffer(delay_ms=0)
        buf.push("a", 10, 1.0, 0)
        buf.push("a", 200, 2.0, 0)
        assert len(buf.pop_due(50)) == 1
        assert len(buf) == 1


class TestCapacity:
    def test_capacity_evicts_oldest(self):
        buf = SampleBuffer(capacity=2)
        buf.push("a", 10, 1.0, 0)
        buf.push("a", 20, 2.0, 0)
        buf.push("a", 30, 3.0, 0)
        assert buf.stats.evicted == 1
        assert [s.value for s in buf.pop_due(100)] == [2.0, 3.0]


class TestIntrospection:
    def test_peek_next(self):
        buf = SampleBuffer()
        assert buf.peek_next() is None
        buf.push("a", 20, 2.0, 0)
        buf.push("a", 10, 1.0, 0)
        assert buf.peek_next().time_ms == 10

    def test_names_sorted_unique(self):
        buf = SampleBuffer()
        buf.push("b", 1, 0, 0)
        buf.push("a", 2, 0, 0)
        buf.push("b", 3, 0, 0)
        assert buf.names() == ("a", "b")

    def test_clear(self):
        buf = SampleBuffer()
        buf.push("a", 1, 0, 0)
        buf.push("a", 2, 0, 0)
        assert buf.clear() == 2
        assert len(buf) == 0

    def test_stats_buffered_occupancy(self):
        buf = SampleBuffer(delay_ms=50)
        buf.push("a", 0, 1.0, 0)
        buf.push("a", 10, 1.0, 0)
        buf.push("a", 0, 1.0, now_ms=200)  # late
        assert buf.stats.buffered == 2
        buf.pop_due(100)
        assert buf.stats.buffered == 0


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4),  # timestamp
                st.floats(min_value=-1e3, max_value=1e3),  # value
            ),
            max_size=60,
        ),
        st.floats(min_value=0, max_value=500),  # delay
        st.floats(min_value=0, max_value=2e4),  # pop time
    )
    def test_every_sample_dropped_buffered_or_popped(self, samples, delay, pop_at):
        buf = SampleBuffer(delay_ms=delay)
        for t, v in samples:
            buf.push("s", t, v, now_ms=50.0)  # some pushes will be late
        due = buf.pop_due(max(pop_at, 50.0))
        stats = buf.stats
        assert stats.pushed == len(samples)
        assert stats.dropped_late + len(due) + len(buf) == len(samples)

    @given(
        st.lists(st.floats(min_value=0, max_value=1e4), min_size=1, max_size=60),
        st.floats(min_value=0, max_value=2e4),
    )
    def test_popped_samples_are_sorted_and_due(self, times, pop_at):
        buf = SampleBuffer(delay_ms=0)
        for t in times:
            buf.push("s", t, 0.0, now_ms=0)
        due = buf.pop_due(pop_at)
        popped_times = [s.time_ms for s in due]
        assert popped_times == sorted(popped_times)
        assert all(t <= pop_at for t in popped_times)
        remaining = buf.pop_due(1e9)
        assert all(s.time_ms > pop_at for s in remaining)
