"""Tests for the Section 3.3 tuple format, Recorder and Player."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import (
    Player,
    Recorder,
    Tuple3,
    TupleFormatError,
    format_tuple,
    parse_stream,
    parse_tuple,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-"),
    min_size=1,
    max_size=12,
)
times = st.floats(min_value=0, max_value=1e9, allow_nan=False)
vals = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestFormat:
    def test_three_field_tuple(self):
        assert format_tuple(100, 42, "CWND") == "100 42 CWND"

    def test_two_field_tuple_single_signal(self):
        """Special case: a single signal may omit the name (§3.3)."""
        assert format_tuple(100, 42) == "100 42"

    def test_floats_preserved(self):
        line = format_tuple(10.5, -3.25, "x")
        parsed = parse_tuple(line)
        assert parsed.time_ms == 10.5
        assert parsed.value == -3.25

    def test_whitespace_in_name_rejected(self):
        with pytest.raises(TupleFormatError):
            format_tuple(0, 0, "two words")


class TestParse:
    def test_blank_and_comment_lines_skipped(self):
        assert parse_tuple("") is None
        assert parse_tuple("   ") is None
        assert parse_tuple("# header") is None

    def test_bad_field_count(self):
        with pytest.raises(TupleFormatError):
            parse_tuple("1 2 3 4")
        with pytest.raises(TupleFormatError):
            parse_tuple("1")

    def test_non_numeric_fields(self):
        with pytest.raises(TupleFormatError):
            parse_tuple("abc 2 sig")
        with pytest.raises(TupleFormatError):
            parse_tuple("1 xyz sig")

    def test_stream_enforces_time_order(self):
        """Successive tuple times must be non-decreasing (§3.3)."""
        lines = ["10 1 a", "20 2 a", "15 3 a"]
        with pytest.raises(TupleFormatError):
            list(parse_stream(lines))

    def test_stream_allows_equal_times(self):
        lines = ["10 1 a", "10 2 b"]
        assert len(list(parse_stream(lines))) == 2

    def test_stream_skips_comments_between_tuples(self):
        lines = ["10 1 a", "# note", "", "20 2 a"]
        assert len(list(parse_stream(lines))) == 2

    @given(times, vals, names)
    def test_roundtrip_three_fields(self, t, v, name):
        parsed = parse_tuple(format_tuple(t, v, name))
        assert parsed == Tuple3(time_ms=t, value=v, name=name)

    @given(times, vals)
    def test_roundtrip_two_fields(self, t, v):
        parsed = parse_tuple(format_tuple(t, v))
        assert parsed == Tuple3(time_ms=t, value=v, name=None)


class TestFloatRoundTrip:
    """format → parse must be bit-exact across the whole float64 range.

    Regression suite for the integer-rendering fast path: it used to
    drop the sign of -0.0 and explode 1e300-scale values into
    300-digit integer strings.
    """

    def roundtrip(self, x):
        parsed = parse_tuple(format_tuple(x, x, "s"))
        return parsed.time_ms, parsed.value

    def test_negative_zero_keeps_its_sign(self):
        import math

        assert format_tuple(0.0, -0.0, "s") == "0 -0.0 s"
        _, value = self.roundtrip(-0.0)
        assert value == 0.0 and math.copysign(1.0, value) < 0

    def test_subnormals_exact(self):
        for x in (5e-324, 2.2250738585072014e-308, -5e-324):
            t, v = self.roundtrip(x)
            assert (t, v) == (x, x)

    def test_huge_magnitudes_stay_compact_and_exact(self):
        line = format_tuple(1e300, -1e308, "s")
        assert line == "1e+300 -1e+308 s"
        t, v = self.roundtrip(1e300)
        assert (t, v) == (1e300, 1e300)

    def test_integer_valued_floats_render_without_point(self):
        assert format_tuple(100.0, -42.0, "s") == "100 -42 s"
        t, v = self.roundtrip(-42.0)
        assert (t, v) == (-42.0, -42.0)

    def test_large_integers_above_int_threshold_use_repr(self):
        # 1e16 is integer-valued but rendered in float notation; the
        # round-trip stays exact either way.
        t, v = self.roundtrip(1e16)
        assert (t, v) == (1e16, 1e16)

    @given(st.floats(allow_nan=False))
    def test_any_finite_or_infinite_float64_roundtrips(self, x):
        import math

        t, v = self.roundtrip(x)
        assert t == x and v == x
        assert math.copysign(1.0, v) == math.copysign(1.0, x)

    def test_integer_distinction_survives_binary_store(self, tmp_path):
        """3 and 3.0 denote the same float64; re-encoding the text form
        into the binary capture store must reproduce it exactly."""
        import numpy as np

        from repro.capture import CaptureReader, import_text

        text = "10 3 a\n20 3.0 a\n30 -0.0 a\n40 1e300 a\n"
        import_text(text, tmp_path / "cap")
        _, values = CaptureReader(tmp_path / "cap").read_signal("a")
        expected = np.array([3.0, 3.0, -0.0, 1e300])
        np.testing.assert_array_equal(values, expected)
        # bitwise: -0.0 keeps its sign bit through the store
        assert np.signbit(values[2])


class TestRecorder:
    def test_records_tuples(self):
        sink = io.StringIO()
        rec = Recorder(sink)
        rec.record(10, 1.0, "a")
        rec.record(20, 2.0, "b")
        assert sink.getvalue() == "10 1 a\n20 2 b\n"
        assert rec.count == 2

    def test_rejects_time_regression(self):
        rec = Recorder(io.StringIO())
        rec.record(100, 1.0, "a")
        with pytest.raises(TupleFormatError):
            rec.record(50, 2.0, "a")

    def test_multi_signal_requires_name(self):
        rec = Recorder(io.StringIO())
        with pytest.raises(TupleFormatError):
            rec.record(10, 1.0)

    def test_single_signal_mode_omits_name(self):
        sink = io.StringIO()
        rec = Recorder(sink, single_signal=True)
        rec.record(10, 1.0, "ignored")
        assert sink.getvalue() == "10 1\n"

    def test_comment_lines(self):
        sink = io.StringIO()
        rec = Recorder(sink)
        rec.comment("two\nlines")
        assert sink.getvalue() == "# two\n# lines\n"

    def test_file_sink_and_context_manager(self, tmp_path):
        path = str(tmp_path / "rec.tuples")
        with Recorder(path) as rec:
            rec.record(1, 2.0, "s")
        with open(path) as fh:
            assert fh.read() == "1 2 s\n"


class TestPlayer:
    def make(self, text, **kwargs):
        return Player(io.StringIO(text), **kwargs)

    def test_loads_tuples(self):
        player = self.make("10 1 a\n20 2 b\n")
        assert len(player) == 2
        assert player.names == ["a", "b"]

    def test_advance_to_plays_in_order(self):
        player = self.make("10 1 a\n20 2 a\n30 3 a\n")
        batch = player.advance_to(20)
        assert [t.value for t in batch] == [1.0, 2.0]
        batch = player.advance_to(100)
        assert [t.value for t in batch] == [3.0]
        assert player.exhausted

    def test_advance_is_monotone_consumer(self):
        player = self.make("10 1 a\n20 2 a\n")
        player.advance_to(100)
        assert player.advance_to(200) == []

    def test_default_name_for_two_field_tuples(self):
        player = self.make("10 1\n20 2\n", default_name="solo")
        assert player.names == ["solo"]
        batch = player.advance_to(100)
        assert all(t.name == "solo" for t in batch)

    def test_duration_and_start(self):
        player = self.make("100 1 a\n400 2 a\n")
        assert player.start_time_ms == 100
        assert player.duration_ms == 300

    def test_empty_recording(self):
        player = self.make("# only comments\n")
        assert len(player) == 0
        assert player.duration_ms == 0.0
        assert player.exhausted

    def test_rewind(self):
        player = self.make("10 1 a\n")
        player.advance_to(100)
        player.rewind()
        assert not player.exhausted
        assert len(player.advance_to(100)) == 1

    def test_rejects_out_of_order_file(self):
        with pytest.raises(TupleFormatError):
            self.make("20 1 a\n10 2 a\n")

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "data.tuples"
        path.write_text("10 5 x\n")
        player = Player(str(path))
        assert len(player) == 1


class TestRecordReplayRoundtrip:
    @given(
        st.lists(
            st.tuples(times, vals, names),
            min_size=1,
            max_size=40,
        )
    )
    def test_what_is_recorded_replays_identically(self, raw):
        ordered = sorted(raw, key=lambda r: r[0])
        sink = io.StringIO()
        rec = Recorder(sink)
        for t, v, name in ordered:
            rec.record(t, v, name)
        player = Player(io.StringIO(sink.getvalue()))
        replayed = player.advance_to(float("inf"))
        assert [(p.time_ms, p.value, p.name) for p in replayed] == [
            (float(t), float(v), n) for t, v, n in ordered
        ]
