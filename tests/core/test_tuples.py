"""Tests for the Section 3.3 tuple format, Recorder and Player."""

import io

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import (
    Player,
    Recorder,
    Tuple3,
    TupleFormatError,
    format_tuple,
    parse_stream,
    parse_tuple,
)

names = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_-"),
    min_size=1,
    max_size=12,
)
times = st.floats(min_value=0, max_value=1e9, allow_nan=False)
vals = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)


class TestFormat:
    def test_three_field_tuple(self):
        assert format_tuple(100, 42, "CWND") == "100 42 CWND"

    def test_two_field_tuple_single_signal(self):
        """Special case: a single signal may omit the name (§3.3)."""
        assert format_tuple(100, 42) == "100 42"

    def test_floats_preserved(self):
        line = format_tuple(10.5, -3.25, "x")
        parsed = parse_tuple(line)
        assert parsed.time_ms == 10.5
        assert parsed.value == -3.25

    def test_whitespace_in_name_rejected(self):
        with pytest.raises(TupleFormatError):
            format_tuple(0, 0, "two words")


class TestParse:
    def test_blank_and_comment_lines_skipped(self):
        assert parse_tuple("") is None
        assert parse_tuple("   ") is None
        assert parse_tuple("# header") is None

    def test_bad_field_count(self):
        with pytest.raises(TupleFormatError):
            parse_tuple("1 2 3 4")
        with pytest.raises(TupleFormatError):
            parse_tuple("1")

    def test_non_numeric_fields(self):
        with pytest.raises(TupleFormatError):
            parse_tuple("abc 2 sig")
        with pytest.raises(TupleFormatError):
            parse_tuple("1 xyz sig")

    def test_stream_enforces_time_order(self):
        """Successive tuple times must be non-decreasing (§3.3)."""
        lines = ["10 1 a", "20 2 a", "15 3 a"]
        with pytest.raises(TupleFormatError):
            list(parse_stream(lines))

    def test_stream_allows_equal_times(self):
        lines = ["10 1 a", "10 2 b"]
        assert len(list(parse_stream(lines))) == 2

    def test_stream_skips_comments_between_tuples(self):
        lines = ["10 1 a", "# note", "", "20 2 a"]
        assert len(list(parse_stream(lines))) == 2

    @given(times, vals, names)
    def test_roundtrip_three_fields(self, t, v, name):
        parsed = parse_tuple(format_tuple(t, v, name))
        assert parsed == Tuple3(time_ms=t, value=v, name=name)

    @given(times, vals)
    def test_roundtrip_two_fields(self, t, v):
        parsed = parse_tuple(format_tuple(t, v))
        assert parsed == Tuple3(time_ms=t, value=v, name=None)


class TestRecorder:
    def test_records_tuples(self):
        sink = io.StringIO()
        rec = Recorder(sink)
        rec.record(10, 1.0, "a")
        rec.record(20, 2.0, "b")
        assert sink.getvalue() == "10 1 a\n20 2 b\n"
        assert rec.count == 2

    def test_rejects_time_regression(self):
        rec = Recorder(io.StringIO())
        rec.record(100, 1.0, "a")
        with pytest.raises(TupleFormatError):
            rec.record(50, 2.0, "a")

    def test_multi_signal_requires_name(self):
        rec = Recorder(io.StringIO())
        with pytest.raises(TupleFormatError):
            rec.record(10, 1.0)

    def test_single_signal_mode_omits_name(self):
        sink = io.StringIO()
        rec = Recorder(sink, single_signal=True)
        rec.record(10, 1.0, "ignored")
        assert sink.getvalue() == "10 1\n"

    def test_comment_lines(self):
        sink = io.StringIO()
        rec = Recorder(sink)
        rec.comment("two\nlines")
        assert sink.getvalue() == "# two\n# lines\n"

    def test_file_sink_and_context_manager(self, tmp_path):
        path = str(tmp_path / "rec.tuples")
        with Recorder(path) as rec:
            rec.record(1, 2.0, "s")
        with open(path) as fh:
            assert fh.read() == "1 2 s\n"


class TestPlayer:
    def make(self, text, **kwargs):
        return Player(io.StringIO(text), **kwargs)

    def test_loads_tuples(self):
        player = self.make("10 1 a\n20 2 b\n")
        assert len(player) == 2
        assert player.names == ["a", "b"]

    def test_advance_to_plays_in_order(self):
        player = self.make("10 1 a\n20 2 a\n30 3 a\n")
        batch = player.advance_to(20)
        assert [t.value for t in batch] == [1.0, 2.0]
        batch = player.advance_to(100)
        assert [t.value for t in batch] == [3.0]
        assert player.exhausted

    def test_advance_is_monotone_consumer(self):
        player = self.make("10 1 a\n20 2 a\n")
        player.advance_to(100)
        assert player.advance_to(200) == []

    def test_default_name_for_two_field_tuples(self):
        player = self.make("10 1\n20 2\n", default_name="solo")
        assert player.names == ["solo"]
        batch = player.advance_to(100)
        assert all(t.name == "solo" for t in batch)

    def test_duration_and_start(self):
        player = self.make("100 1 a\n400 2 a\n")
        assert player.start_time_ms == 100
        assert player.duration_ms == 300

    def test_empty_recording(self):
        player = self.make("# only comments\n")
        assert len(player) == 0
        assert player.duration_ms == 0.0
        assert player.exhausted

    def test_rewind(self):
        player = self.make("10 1 a\n")
        player.advance_to(100)
        player.rewind()
        assert not player.exhausted
        assert len(player.advance_to(100)) == 1

    def test_rejects_out_of_order_file(self):
        with pytest.raises(TupleFormatError):
            self.make("20 1 a\n10 2 a\n")

    def test_reads_from_path(self, tmp_path):
        path = tmp_path / "data.tuples"
        path.write_text("10 5 x\n")
        player = Player(str(path))
        assert len(player) == 1


class TestRecordReplayRoundtrip:
    @given(
        st.lists(
            st.tuples(times, vals, names),
            min_size=1,
            max_size=40,
        )
    )
    def test_what_is_recorded_replays_identically(self, raw):
        ordered = sorted(raw, key=lambda r: r[0])
        sink = io.StringIO()
        rec = Recorder(sink)
        for t, v, name in ordered:
            rec.record(t, v, name)
        player = Player(io.StringIO(sink.getvalue()))
        replayed = player.advance_to(float("inf"))
        assert [(p.time_ms, p.value, p.name) for p in replayed] == [
            (float(t), float(v), n) for t, v, n in ordered
        ]
