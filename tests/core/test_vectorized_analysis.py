"""Parity suite: vectorized analysis path vs scalar references.

Covers the PR-2 vectorization satellites: ``Trigger.detect`` /
``envelope`` over numpy columns (including ``TraceRing`` views, no list
materialization) must match the scalar implementations bit-for-bit, and
the cached-window spectrum path must equal the uncached computation.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro.core.channel import Channel, TraceRing
from repro.core.frequency import _window, spectrum
from repro.core.signal import buffer_signal
from repro.core.trigger import Edge, Trigger, envelope, stabilised_view


def random_wave(rng: random.Random, n: int) -> list:
    """A random walk with occasional jumps — rich in crossings."""
    out = []
    v = rng.uniform(-5, 5)
    for _ in range(n):
        v += rng.uniform(-1.0, 1.0)
        if rng.random() < 0.05:
            v += rng.uniform(-6.0, 6.0)
        out.append(v)
    return out


class TestDetectParity:
    @pytest.mark.parametrize("seed", range(25))
    def test_randomized_parity_with_scalar_reference(self, seed):
        rng = random.Random(seed)
        wave = random_wave(rng, rng.randint(2, 400))
        trig = Trigger(
            level=rng.uniform(-3, 3),
            edge=rng.choice([Edge.RISING, Edge.FALLING, Edge.EITHER]),
            hysteresis=rng.choice([0.0, 0.0, rng.uniform(0.1, 2.0)]),
            holdoff=rng.choice([0, 0, rng.randint(1, 25)]),
        )
        scalar = trig._crossings(wave)
        assert trig.detect(wave) == scalar
        assert trig.detect(np.asarray(wave)) == scalar
        assert trig.find(wave) == scalar

    def test_exact_level_touch_with_zero_hysteresis(self):
        # prev < level == cur fires rising; the same-sample re-arm path.
        wave = [0.0, 5.0, 0.0, 5.0, 0.0]
        trig = Trigger(5.0, Edge.RISING)
        assert trig.detect(wave) == trig._crossings(wave)

    def test_holdoff_suppressed_fire_still_disarms(self):
        # Crossing inside holdoff must disarm its edge (scalar semantics);
        # a hysteresis trigger only re-fires after retreating past lo.
        wave = [0.0, 10.0, 6.0, 10.0, 0.0, 10.0]
        for holdoff in (0, 1, 2, 3):
            trig = Trigger(5.0, Edge.RISING, hysteresis=1.0, holdoff=holdoff)
            assert trig.detect(wave) == trig._crossings(wave)

    def test_short_and_empty_traces(self):
        trig = Trigger(1.0)
        assert trig.detect([]) == []
        assert trig.detect([3.0]) == []
        assert trig.detect(np.empty(0)) == []

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            Trigger(1.0).detect(np.zeros((3, 3)))


class TestTraceRingInput:
    def make_ring(self, values) -> TraceRing:
        ring = TraceRing(maxlen=len(values))
        for i, v in enumerate(values):
            ring.append(float(i), float(v), float(v))
        return ring

    def test_detect_straight_from_ring(self):
        wave = [math.sin(i / 5) * 10 for i in range(200)]
        ring = self.make_ring(wave)
        trig = Trigger(0.0, Edge.EITHER, hysteresis=0.5)
        assert trig.detect(ring) == trig._crossings(wave)

    def test_detect_from_channel(self):
        channel = Channel(buffer_signal("sig"), capacity=256)
        wave = [math.sin(i / 3) * 4 for i in range(128)]
        channel.accept_samples(
            np.arange(128, dtype=np.float64), np.asarray(wave, dtype=np.float64)
        )
        trig = Trigger(0.0, Edge.RISING)
        assert trig.detect(channel) == trig._crossings(channel.values())

    def test_sweeps_from_ring_are_stable_snapshots(self):
        wave = [0.0, 10.0] * 50
        ring = self.make_ring(wave)
        trig = Trigger(5.0, Edge.RISING)
        sweeps = trig.sweeps(ring, width=4)
        assert sweeps and all(isinstance(s, np.ndarray) for s in sweeps)
        # The ring's storage is overwritten as acquisition continues;
        # captured sweeps must not mutate with it.
        snapshot = [s.copy() for s in sweeps]
        for i in range(ring.maxlen):
            ring.append(1e6 + i, -1.0, -1.0)
        assert all(np.array_equal(s, c) for s, c in zip(sweeps, snapshot))

    def test_sweeps_from_ndarray_are_views(self):
        wave = np.asarray([0.0, 10.0] * 50)
        sweeps = Trigger(5.0, Edge.RISING).sweeps(wave, width=4)
        # Caller-owned arrays keep the zero-copy fast path.
        assert sweeps and all(s.base is not None for s in sweeps)

    def test_sweeps_list_input_still_lists(self):
        wave = [0.0, 10.0] * 10
        sweeps = Trigger(5.0, Edge.RISING).sweeps(wave, width=2)
        assert sweeps and all(isinstance(s, list) for s in sweeps)


class TestEnvelopeParity:
    @pytest.mark.parametrize("seed", range(10))
    def test_array_path_matches_list_path(self, seed):
        rng = random.Random(seed)
        width = rng.randint(1, 30)
        rows = [[rng.uniform(-5, 5) for _ in range(width)] for _ in range(rng.randint(1, 12))]
        lo_list, hi_list = envelope(rows)
        lo_arr, hi_arr = envelope(np.asarray(rows))
        assert isinstance(lo_arr, np.ndarray) and isinstance(hi_arr, np.ndarray)
        assert lo_arr.tolist() == lo_list
        assert hi_arr.tolist() == hi_list

    def test_list_of_arrays(self):
        rows = [np.asarray([1.0, 5.0]), np.asarray([3.0, 2.0])]
        lo, hi = envelope(rows)
        assert lo.tolist() == [1.0, 2.0]
        assert hi.tolist() == [3.0, 5.0]

    def test_array_validation(self):
        with pytest.raises(ValueError):
            envelope(np.zeros((0, 4)))
        with pytest.raises(ValueError):
            envelope(np.zeros(4))  # 1-D is not a sweep stack
        with pytest.raises(ValueError):
            envelope([np.zeros(2), np.zeros(3)])  # ragged arrays

    def test_stabilised_view_on_array(self):
        wave = np.tile(np.asarray([0.0, 10.0, 10.0, 0.0]), 10)
        view = stabilised_view(wave, Trigger(5.0, Edge.RISING), width=4)
        assert view is not None and isinstance(view, np.ndarray)
        assert len(view) == 4


class TestSpectrumCaching:
    def test_window_cache_returns_same_frozen_array(self):
        a = _window("hann", 257)
        b = _window("hann", 257)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 1.0

    def test_repeated_spectra_identical(self):
        wave = [math.sin(2 * math.pi * i / 32) for i in range(256)]
        first = spectrum(wave, period_ms=50)
        second = spectrum(wave, period_ms=50)
        assert np.array_equal(first.magnitudes, second.magnitudes)
        assert np.array_equal(first.freqs_hz, second.freqs_hz)

    def test_scratch_reuse_does_not_leak_between_traces(self):
        """Same length, different data: the reused buffer must not bleed."""
        a = [math.sin(2 * math.pi * i / 16) for i in range(128)]
        b = [math.cos(2 * math.pi * i / 8) for i in range(128)]
        spec_a1 = spectrum(a, period_ms=10)
        spectrum(b, period_ms=10)
        spec_a2 = spectrum(a, period_ms=10)
        assert np.array_equal(spec_a1.magnitudes, spec_a2.magnitudes)

    def test_matches_uncached_reference(self):
        wave = [math.sin(2 * math.pi * i / 20) + 0.3 for i in range(200)]
        spec = spectrum(wave, period_ms=50, window="hamming")
        data = np.asarray(wave, dtype=float)
        data = data - data.mean()
        taper = np.hamming(data.size)
        mags = np.abs(np.fft.rfft(data * taper)) / (taper.sum() / 2.0)
        assert np.allclose(spec.magnitudes, mags, rtol=0, atol=0)

    def test_spectrum_from_trace_ring(self):
        ring = TraceRing(maxlen=128)
        for i in range(128):
            v = math.sin(2 * math.pi * i / 16)
            ring.append(float(i), v, v)
        spec_ring = spectrum(ring, period_ms=50)
        spec_list = spectrum([p.value for p in ring], period_ms=50)
        assert np.array_equal(spec_ring.magnitudes, spec_list.magnitudes)

    def test_spectrum_from_generator_still_works(self):
        spec = spectrum((math.sin(i / 3.0) for i in range(64)), period_ms=50)
        assert spec.magnitudes.size == 33
