"""Tests for PollHub: coalesced scope polling on one shared timer."""

from __future__ import annotations

from repro.core.manager import ScopeManager
from repro.core.pollhub import PollHub
from repro.core.signal import Cell, memory_signal
from repro.eventloop.loop import MainLoop


def manager_with_scopes(n: int, period_ms: float = 50.0) -> ScopeManager:
    mgr = ScopeManager()
    for i in range(n):
        scope = mgr.scope_new(f"s{i}", period_ms=period_ms)
        scope.signal_new(memory_signal("x", Cell(float(i))))
    return mgr


class TestCoalescing:
    def test_start_all_shares_one_timer(self):
        mgr = manager_with_scopes(8)
        mgr.start_all()
        assert len(mgr.loop.sources) == 1
        assert mgr.poll_timer_count == 1
        assert PollHub.of(mgr.loop).subscriber_count == 8

    def test_distinct_periods_get_distinct_timers(self):
        mgr = ScopeManager()
        for i, period in enumerate([50, 50, 100]):
            mgr.scope_new(f"s{i}", period_ms=period).signal_new(
                memory_signal("x", Cell(1.0))
            )
        mgr.start_all()
        assert mgr.poll_timer_count == 2
        assert len(mgr.loop.sources) == 2

    def test_shared_timer_polls_every_scope(self):
        mgr = manager_with_scopes(5)
        mgr.start_all()
        mgr.run_for(1000)
        # Identical to a private 50 ms timer: polls at t=50..950.
        assert all(s.polls == 19 for s in mgr.scopes)
        assert all(s.value_of("x") == float(i) for i, s in enumerate(mgr.scopes))

    def test_stop_one_keeps_timer_for_the_rest(self):
        mgr = manager_with_scopes(3)
        mgr.start_all()
        mgr.scope("s0").stop_polling()
        assert len(mgr.loop.sources) == 1
        mgr.run_for(200)
        assert mgr.scope("s0").polls == 0
        assert mgr.scope("s1").polls > 0

    def test_last_unsubscribe_removes_timer(self):
        mgr = manager_with_scopes(3)
        mgr.start_all()
        mgr.stop_all()
        assert mgr.loop.sources == []
        assert mgr.poll_timer_count == 0

    def test_restart_later_gets_fresh_phase(self):
        """A scope restarted mid-run must wait one full period, exactly as
        its private timer would have."""
        mgr = manager_with_scopes(2)
        mgr.start_all()
        mgr.run_for(70)  # one poll at t=50 each
        scope = mgr.scope("s0")
        scope.stop_polling()
        scope.start_polling()  # t=70: next poll due at 120, not 100
        # Two groups now: phase-(0) for s1, phase-(70) for s0.
        assert mgr.poll_timer_count == 2
        polls_before = scope.polls
        mgr.run_for(45)  # to t=115: s0 must not have polled yet
        assert scope.polls == polls_before
        mgr.run_for(10)  # past t=120
        assert scope.polls == polls_before + 1

    def test_lost_intervals_fan_out_to_all_scopes(self):
        mgr = manager_with_scopes(3)
        mgr.start_all()
        mgr.loop.clock.advance(175)  # swallow two whole periods
        mgr.run_for(50)
        assert all(s.lost_timeouts == 2 for s in mgr.scopes)

    def test_unsubscribed_sibling_not_ticked_mid_dispatch(self):
        loop = MainLoop()
        hub = PollHub.of(loop)
        ticks = []
        subs = {}

        def first(lost):
            ticks.append("first")
            hub.unsubscribe(subs["second"])

        def second(lost):
            ticks.append("second")

        subs["first"] = hub.subscribe(50, first)
        subs["second"] = hub.subscribe(50, second)
        loop.run_until(60)
        assert ticks == ["first"]

    def test_hub_is_per_loop_singleton(self):
        loop = MainLoop()
        assert PollHub.of(loop) is PollHub.of(loop)
        assert PollHub.of(MainLoop()) is not PollHub.of(loop)
