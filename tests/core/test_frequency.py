"""Tests for the frequency-domain view."""

import math

import numpy as np
import pytest

from repro.core.frequency import band_power, spectrum, top_components


def sine(freq_hz, period_ms, n, amplitude=1.0, offset=0.0):
    dt = period_ms / 1000.0
    return [offset + amplitude * math.sin(2 * math.pi * freq_hz * i * dt) for i in range(n)]


class TestValidation:
    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            spectrum([1.0], 50)

    def test_positive_period(self):
        with pytest.raises(ValueError):
            spectrum([1, 2, 3], 0)

    def test_unknown_window(self):
        with pytest.raises(ValueError):
            spectrum([1, 2, 3], 50, window="kaiser")


class TestSpectrum:
    def test_sample_rate_and_nyquist(self):
        spec = spectrum([0, 1] * 64, period_ms=10)
        assert spec.sample_rate_hz == 100.0
        assert spec.nyquist_hz == 50.0

    def test_peak_finds_sine_frequency(self):
        # 5 Hz sine sampled at 100 Hz (10 ms period, paper's fastest).
        spec = spectrum(sine(5.0, 10, 512), period_ms=10)
        freq, mag = spec.peak()
        assert freq == pytest.approx(5.0, abs=0.2)
        assert mag == pytest.approx(1.0, rel=0.1)

    def test_peak_amplitude_scales(self):
        spec = spectrum(sine(5.0, 10, 512, amplitude=3.0), period_ms=10)
        _, mag = spec.peak()
        assert mag == pytest.approx(3.0, rel=0.1)

    def test_dominant_period(self):
        spec = spectrum(sine(4.0, 10, 512), period_ms=10)
        assert spec.dominant_period_ms() == pytest.approx(250.0, rel=0.05)

    def test_detrend_removes_dc(self):
        # Not exactly zero: window leakage from the tone reaches bin 0,
        # but the 50-unit offset itself must be gone.
        spec = spectrum(sine(5.0, 10, 512, offset=50.0), period_ms=10)
        assert spec.magnitudes[0] < 0.05

    def test_no_detrend_keeps_dc(self):
        spec = spectrum([10.0] * 64, period_ms=10, detrend=False, window="rect")
        assert spec.magnitudes[0] > 1.0

    def test_all_windows_find_same_peak(self):
        for window in ("rect", "hann", "hamming", "blackman"):
            spec = spectrum(sine(8.0, 10, 512), period_ms=10, window=window)
            assert spec.peak()[0] == pytest.approx(8.0, abs=0.3)

    def test_two_tone_separation(self):
        data = np.array(sine(5.0, 10, 1024)) + np.array(sine(20.0, 10, 1024, amplitude=0.5))
        spec = spectrum(data, period_ms=10)
        # Leakage bins cluster around each tone, so look for both tones
        # among the top few components rather than exactly the top two.
        freqs = [f for f, _ in top_components(spec, 5)]
        assert any(abs(f - 5.0) < 0.3 for f in freqs)
        assert any(abs(f - 20.0) < 0.3 for f in freqs)
        # And the stronger tone carries more band power than the weaker.
        assert band_power(spec, 4, 6) > band_power(spec, 19, 21)


class TestBandPower:
    def test_power_concentrates_at_tone(self):
        spec = spectrum(sine(10.0, 10, 1024), period_ms=10)
        in_band = band_power(spec, 8, 12)
        out_band = band_power(spec, 20, 40)
        assert in_band > 100 * out_band

    def test_empty_band_rejected(self):
        spec = spectrum(sine(10.0, 10, 64), period_ms=10)
        with pytest.raises(ValueError):
            band_power(spec, 10, 5)


class TestTopComponents:
    def test_zero_request(self):
        spec = spectrum(sine(10.0, 10, 64), period_ms=10)
        assert top_components(spec, 0) == []

    def test_sorted_by_magnitude(self):
        spec = spectrum(sine(10.0, 10, 512), period_ms=10)
        tops = top_components(spec, 3)
        mags = [m for _, m in tops]
        assert mags == sorted(mags, reverse=True)
