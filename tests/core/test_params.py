"""Tests for the Section 3.2 control-parameter interface."""

import pytest

from repro.core.params import ControlParameter, ParameterError, ParameterStore
from repro.core.signal import Cell


class TestControlParameter:
    def test_requires_accessor(self):
        with pytest.raises(ParameterError):
            ControlParameter("p")

    def test_cell_and_accessors_mutually_exclusive(self):
        with pytest.raises(ParameterError):
            ControlParameter(
                "p", cell=Cell(), getter=lambda: 0.0, setter=lambda v: None
            )

    def test_getter_without_setter_rejected(self):
        with pytest.raises(ParameterError):
            ControlParameter("p", getter=lambda: 0.0)

    def test_empty_name_rejected(self):
        with pytest.raises(ParameterError):
            ControlParameter("", cell=Cell())

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ParameterError):
            ControlParameter("p", cell=Cell(), minimum=10, maximum=5)

    def test_cell_read_write(self):
        cell = Cell(5)
        param = ControlParameter("p", cell=cell)
        assert param.get() == 5.0
        param.set(9)
        assert cell.value == 9.0

    def test_getter_setter_read_write(self):
        state = {"v": 1.0}
        param = ControlParameter(
            "p", getter=lambda: state["v"], setter=lambda v: state.update(v=v)
        )
        param.set(4.0)
        assert state["v"] == 4.0
        assert param.get() == 4.0

    def test_bounds_enforced_on_set(self):
        param = ControlParameter("p", cell=Cell(5), minimum=0, maximum=10)
        with pytest.raises(ParameterError):
            param.set(11)
        with pytest.raises(ParameterError):
            param.set(-1)

    def test_adjust_steps_and_clamps(self):
        param = ControlParameter("p", cell=Cell(5), minimum=0, maximum=10, step=2)
        assert param.adjust(2) == 9.0
        assert param.adjust(5) == 10.0  # clamped at the rail, no raise
        assert param.adjust(-100) == 0.0


class TestParameterStore:
    def make_store(self):
        store = ParameterStore()
        store.add(ControlParameter("a", cell=Cell(1)))
        store.add(ControlParameter("b", cell=Cell(2)))
        return store

    def test_add_and_read(self):
        store = self.make_store()
        assert store.get("a") == 1.0
        assert store.names() == ["a", "b"]
        assert len(store) == 2
        assert "a" in store

    def test_duplicate_rejected(self):
        store = self.make_store()
        with pytest.raises(ParameterError):
            store.add(ControlParameter("a", cell=Cell()))

    def test_unknown_name(self):
        store = self.make_store()
        with pytest.raises(ParameterError):
            store.get("zzz")
        with pytest.raises(ParameterError):
            store.remove("zzz")

    def test_remove(self):
        store = self.make_store()
        store.remove("a")
        assert "a" not in store

    def test_set_notifies_listeners(self):
        store = self.make_store()
        seen = []
        store.add_listener(lambda name, value: seen.append((name, value)))
        store.set("a", 7.0)
        assert seen == [("a", 7.0)]

    def test_adjust_notifies_listeners(self):
        store = self.make_store()
        seen = []
        store.add_listener(lambda name, value: seen.append((name, value)))
        store.adjust("b", 3)
        assert seen == [("b", 5.0)]

    def test_remove_listener(self):
        store = self.make_store()
        seen = []
        listener = lambda name, value: seen.append(name)
        store.add_listener(listener)
        store.remove_listener(listener)
        store.set("a", 3.0)
        assert seen == []

    def test_snapshot(self):
        store = self.make_store()
        assert store.snapshot() == {"a": 1.0, "b": 2.0}

    def test_application_behaviour_changes_through_store(self):
        """The point of the interface: writes reach application state."""
        app_state = Cell(8)
        store = ParameterStore()
        store.add(ControlParameter("elephants", cell=app_state, minimum=0, maximum=40))
        store.set("elephants", 16)
        assert app_state.value == 16.0
