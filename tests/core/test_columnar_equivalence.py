"""Columnar/scalar equivalence for the batched acquisition hot path.

The columnar rewrite of the sample buffer, aggregators and trace ring
must be *semantically invisible*: randomized streams pushed through the
old-style scalar API and through the new batch API must produce the
identical pop order, late-drop counts, eviction counts and aggregator
outputs.  A small heap model reimplements the seed per-object semantics
verbatim as the oracle.
"""

import heapq
import itertools
import random
from collections import deque

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.aggregate import AggregateKind, make_aggregator
from repro.core.buffer import SampleBuffer
from repro.core.channel import Channel, TraceRing
from repro.core.signal import buffer_signal


class HeapModel:
    """The seed implementation: a heap of per-sample tuples."""

    def __init__(self, delay_ms=0.0, capacity=None):
        self.delay_ms = delay_ms
        self.capacity = capacity
        self._heap = []
        self._seq = itertools.count()
        self.pushed = self.dropped_late = self.evicted = self.popped = 0

    def push(self, name, time_ms, value, now_ms):
        self.pushed += 1
        if now_ms > time_ms + self.delay_ms:
            self.dropped_late += 1
            return False
        if self.capacity is not None and len(self._heap) >= self.capacity:
            heapq.heappop(self._heap)
            self.evicted += 1
        heapq.heappush(self._heap, (float(time_ms), next(self._seq), name, float(value)))
        return True

    def pop_due(self, now_ms):
        due = []
        while self._heap and self._heap[0][0] + self.delay_ms <= now_ms:
            due.append(heapq.heappop(self._heap))
        self.popped += len(due)
        return due


def stream_strategy(max_size=120):
    return st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e4),  # timestamp
            st.floats(min_value=-1e3, max_value=1e3),  # value
            st.sampled_from(["a", "b", "c"]),  # signal name
        ),
        max_size=max_size,
    )


class TestScalarMatchesHeapModel:
    @given(
        stream_strategy(),
        st.floats(min_value=0, max_value=500),
        st.lists(st.floats(min_value=0, max_value=2e4), max_size=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_interleaved_push_pop(self, samples, delay, pop_times):
        buf = SampleBuffer(delay_ms=delay)
        model = HeapModel(delay_ms=delay)
        pop_times = sorted(pop_times)
        # Interleave: push a prefix, pop, push the rest, pop again.
        cut = len(samples) // 2
        for t, v, name in samples[:cut]:
            assert buf.push(name, t, v, now_ms=50.0) == model.push(name, t, v, 50.0)
        for at in pop_times[: len(pop_times) // 2]:
            got = [(s.time_ms, s.seq, s.name, s.value) for s in buf.pop_due(at)]
            assert got == model.pop_due(at)
        for t, v, name in samples[cut:]:
            assert buf.push(name, t, v, now_ms=60.0) == model.push(name, t, v, 60.0)
        for at in pop_times[len(pop_times) // 2 :] + [1e9]:
            got = [(s.time_ms, s.seq, s.name, s.value) for s in buf.pop_due(at)]
            assert got == model.pop_due(at)
        assert buf.stats.dropped_late == model.dropped_late
        assert buf.stats.popped == model.popped
        assert len(buf) == len(model._heap) == 0

    @given(stream_strategy(60), st.integers(min_value=1, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_capacity_eviction_order(self, samples, capacity):
        buf = SampleBuffer(capacity=capacity)
        model = HeapModel(capacity=capacity)
        for t, v, name in samples:
            buf.push(name, t, v, now_ms=0.0)
            model.push(name, t, v, 0.0)
        assert buf.stats.evicted == model.evicted
        got = [(s.time_ms, s.seq, s.name, s.value) for s in buf.pop_due(1e9)]
        assert got == model.pop_due(1e9)


class TestBatchMatchesScalar:
    @given(
        stream_strategy(),
        st.floats(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=17),
    )
    @settings(max_examples=60, deadline=None)
    def test_push_many_equals_push_loop(self, samples, delay, chunk):
        scalar = SampleBuffer(delay_ms=delay)
        batch = SampleBuffer(delay_ms=delay)
        for t, v, name in samples:
            scalar.push(name, t, v, now_ms=50.0)
        by_name = {}
        for t, v, name in samples:
            by_name.setdefault(name, []).append((t, v))
        # Push each name's stream in arbitrary-size chunks.  Note: seq
        # assignment differs between the two interleavings, so we compare
        # per-name pop streams (time order within a name is preserved).
        for name, pairs in by_name.items():
            for i in range(0, len(pairs), chunk):
                part = pairs[i : i + chunk]
                batch.push_many(
                    name, [t for t, _ in part], [v for _, v in part], now_ms=50.0
                )
        assert batch.stats.pushed == scalar.stats.pushed
        assert batch.stats.dropped_late == scalar.stats.dropped_late
        scalar_grouped = scalar.pop_due_by_name(1e9)
        batch_grouped = batch.pop_due_grouped(1e9)
        assert set(batch_grouped) == set(scalar_grouped)
        for name, (times, values) in batch_grouped.items():
            assert times.tolist() == [s.time_ms for s in scalar_grouped[name]]
            assert values.tolist() == [s.value for s in scalar_grouped[name]]

    @given(stream_strategy(), st.floats(min_value=0, max_value=2e4))
    @settings(max_examples=60, deadline=None)
    def test_pop_due_arrays_equals_pop_due(self, samples, pop_at):
        a = SampleBuffer()
        b = SampleBuffer()
        for t, v, name in samples:
            a.push(name, t, v, now_ms=0.0)
            b.push(name, t, v, now_ms=0.0)
        objs = a.pop_due(pop_at)
        times, values, ids = b.pop_due_arrays(pop_at)
        assert times.tolist() == [s.time_ms for s in objs]
        assert values.tolist() == [s.value for s in objs]
        assert [b._name_of_id[i] for i in ids.tolist()] == [s.name for s in objs]
        assert a.stats.popped == b.stats.popped

    @given(stream_strategy(60), st.integers(min_value=1, max_value=10))
    @settings(max_examples=40, deadline=None)
    def test_push_many_capacity_matches_push_loop(self, samples, capacity):
        """Single-name batches with capacity: eviction counts must match."""
        scalar = SampleBuffer(capacity=capacity)
        batch = SampleBuffer(capacity=capacity)
        for t, v, _ in samples:
            scalar.push("s", t, v, now_ms=0.0)
        batch.push_many(
            "s", [t for t, _, _ in samples], [v for _, v, _ in samples], now_ms=0.0
        )
        assert batch.stats.evicted == scalar.stats.evicted
        got_b = [(s.time_ms, s.value) for s in batch.pop_due(1e9)]
        got_s = [(s.time_ms, s.value) for s in scalar.pop_due(1e9)]
        assert got_b == got_s


class TestNaNParity:
    def test_nan_timestamp_accepted_by_both_apis(self):
        """The scalar rule `now > t + delay` keeps NaN-stamped samples
        (the comparison is False); the batch mask must match."""
        scalar = SampleBuffer(delay_ms=10)
        batch = SampleBuffer(delay_ms=10)
        assert scalar.push("s", float("nan"), 1.0, now_ms=100.0) is True
        assert batch.push_many("s", [float("nan")], [1.0], now_ms=100.0) == 1
        assert scalar.stats.dropped_late == batch.stats.dropped_late == 0
        assert len(scalar) == len(batch) == 1

    def test_nan_event_poisons_min_max(self):
        """A corrupt (NaN) event value must surface at collect time, for
        both the scalar and the batch add path."""
        for kind in (AggregateKind.MAXIMUM, AggregateKind.MINIMUM):
            scalar = make_aggregator(kind)
            scalar.add(float("nan"))
            scalar.add(1.0)
            out = scalar.collect(50.0)
            assert out != out  # NaN
            batch = make_aggregator(kind)
            batch.add_many([float("nan"), 1.0])
            out = batch.collect(50.0)
            assert out != out


class TestAggregatorEquivalence:
    values = st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=80
    )

    @given(values, st.integers(min_value=1, max_value=13))
    @settings(max_examples=60, deadline=None)
    def test_add_many_equals_add_loop_all_kinds(self, xs, chunk):
        for kind in AggregateKind:
            scalar = make_aggregator(kind)
            batch = make_aggregator(kind)
            for x in xs:
                scalar.add(x)
            for i in range(0, len(xs), chunk):
                batch.add_many(xs[i : i + chunk])
            assert batch.pending == scalar.pending
            got = batch.collect(50.0)
            want = scalar.collect(50.0)
            if want is None:
                assert got is None
            else:
                assert got == pytest.approx(want, rel=1e-9, abs=1e-6)


class TestChannelEquivalence:
    @given(
        st.lists(st.floats(min_value=-1e3, max_value=1e3), max_size=60),
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_accept_samples_equals_accept_sample_loop(self, xs, alpha, chunk):
        scalar = Channel(buffer_signal("x", filter=alpha), capacity=32)
        batch = Channel(buffer_signal("x", filter=alpha), capacity=32)
        times = [float(i) for i in range(len(xs))]
        for t, v in zip(times, xs):
            scalar.accept_sample(t, v)
        for i in range(0, len(xs), chunk):
            batch.accept_samples(times[i : i + chunk], xs[i : i + chunk])
        assert batch.times() == scalar.times()
        assert batch.raw_values() == scalar.raw_values()
        assert batch.values() == pytest.approx(scalar.values(), rel=1e-9, abs=1e-9)
        assert batch.samples == scalar.samples
        assert batch.buffered_samples == scalar.buffered_samples
        assert batch.held_value == scalar.held_value


class TestTraceRingModel:
    def test_matches_deque_model_random_ops(self):
        rng = random.Random(7)
        for maxlen in (1, 2, 5, 64):
            ring = TraceRing(maxlen=maxlen)
            model = deque(maxlen=maxlen)
            t = 0.0
            for _ in range(300):
                if rng.random() < 0.7:
                    v = rng.uniform(-10, 10)
                    ring.append(t, v, v * 2)
                    model.append((t, v, v * 2))
                    t += 1.0
                else:
                    n = rng.randrange(0, 7)
                    ts = [t + i for i in range(n)]
                    vs = [rng.uniform(-10, 10) for _ in range(n)]
                    import numpy as np

                    ring.extend(
                        np.asarray(ts), np.asarray(vs), np.asarray(vs) * 2
                    )
                    model.extend(zip(ts, vs, [v * 2 for v in vs]))
                    t += n
                assert len(ring) == len(model)
                assert [
                    (p.time_ms, p.raw, p.value) for p in ring
                ] == [tuple(m) for m in model]
                if model:
                    assert ring[-1].raw == model[-1][1]
                    assert ring[0].time_ms == model[0][0]
