"""Tests for triggers and waveform envelopes (the built Future Work)."""

import math

import pytest

from repro.core.trigger import Edge, Trigger, envelope, stabilised_view


def square_wave(period=10, cycles=5, lo=0.0, hi=10.0):
    out = []
    for _ in range(cycles):
        out.extend([lo] * (period // 2))
        out.extend([hi] * (period // 2))
    return out


class TestValidation:
    def test_negative_hysteresis(self):
        with pytest.raises(ValueError):
            Trigger(5.0, hysteresis=-1)

    def test_negative_holdoff(self):
        with pytest.raises(ValueError):
            Trigger(5.0, holdoff=-1)

    def test_sweep_width_positive(self):
        with pytest.raises(ValueError):
            Trigger(5.0).sweeps([1, 2, 3], width=0)


class TestEdgeDetection:
    def test_rising_edges_found(self):
        wave = square_wave(period=10, cycles=3)
        events = Trigger(5.0, Edge.RISING).find(wave)
        assert len(events) == 3
        assert all(e.edge is Edge.RISING for e in events)
        # Rising crossings happen where lo->hi transitions: every 10.
        assert [e.index for e in events] == [5, 15, 25]

    def test_falling_edges_found(self):
        wave = square_wave(period=10, cycles=3)
        events = Trigger(5.0, Edge.FALLING).find(wave)
        assert [e.index for e in events] == [10, 20]

    def test_either_edge(self):
        wave = square_wave(period=10, cycles=2)
        events = Trigger(5.0, Edge.EITHER).find(wave)
        kinds = [e.edge for e in events]
        assert Edge.RISING in kinds and Edge.FALLING in kinds

    def test_flat_signal_never_triggers(self):
        assert Trigger(5.0).find([3.0] * 50) == []

    def test_sine_triggers_once_per_cycle(self):
        n = 400
        wave = [math.sin(2 * math.pi * i / 40) for i in range(n)]
        events = Trigger(0.0, Edge.RISING, hysteresis=0.1).find(wave)
        assert len(events) == pytest.approx(n / 40, abs=1)


class TestHysteresisAndHoldoff:
    def test_hysteresis_suppresses_chatter(self):
        # Noise oscillating right at the level: 5 +/- 0.2.
        noisy = [5.2 if i % 2 else 4.8 for i in range(100)]
        chatty = Trigger(5.0, Edge.RISING).find(noisy)
        quiet = Trigger(5.0, Edge.RISING, hysteresis=0.5).find(noisy)
        assert len(quiet) < len(chatty)
        assert len(quiet) <= 1

    def test_holdoff_enforces_spacing(self):
        wave = square_wave(period=10, cycles=6)
        events = Trigger(5.0, Edge.RISING, holdoff=15).find(wave)
        gaps = [b.index - a.index for a, b in zip(events, events[1:])]
        assert all(g > 15 for g in gaps)


class TestSweeps:
    def test_sweeps_are_aligned(self):
        wave = square_wave(period=10, cycles=5)
        sweeps = Trigger(5.0, Edge.RISING).sweeps(wave, width=10)
        assert len(sweeps) >= 3
        # All sweeps identical because the waveform repeats exactly.
        for sweep in sweeps[1:]:
            assert sweep == sweeps[0]

    def test_incomplete_sweep_discarded(self):
        wave = square_wave(period=10, cycles=1)
        sweeps = Trigger(5.0, Edge.RISING).sweeps(wave, width=50)
        assert sweeps == []

    def test_stabilised_view_returns_latest(self):
        wave = square_wave(period=10, cycles=4)
        view = stabilised_view(wave, Trigger(5.0, Edge.RISING), width=8)
        assert view is not None
        assert len(view) == 8

    def test_stabilised_view_none_without_trigger(self):
        assert stabilised_view([1.0] * 20, Trigger(5.0), width=5) is None


class TestEnvelope:
    def test_envelope_bounds_sweeps(self):
        sweeps = [[1, 2, 3], [3, 2, 1], [2, 2, 2]]
        lower, upper = envelope(sweeps)
        assert lower == [1, 2, 1]
        assert upper == [3, 2, 3]

    def test_single_sweep_envelope_is_itself(self):
        lower, upper = envelope([[4, 5, 6]])
        assert lower == upper == [4, 5, 6]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            envelope([])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            envelope([[1, 2], [1, 2, 3]])

    def test_noisy_waveform_envelope_contains_all_sweeps(self):
        import random

        rng = random.Random(1)
        sweeps = [
            [math.sin(2 * math.pi * i / 20) + rng.uniform(-0.1, 0.1) for i in range(20)]
            for _ in range(10)
        ]
        lower, upper = envelope(sweeps)
        for sweep in sweeps:
            for i, v in enumerate(sweep):
                assert lower[i] <= v <= upper[i]
