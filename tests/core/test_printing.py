"""Tests for offline printing of recorded data (Future Work, built)."""

import io
import math

import pytest

from repro.core.printing import (
    SignalSummary,
    format_summary,
    print_recording,
    print_summary,
)
from repro.core.scope import Scope
from repro.core.signal import func_signal
from repro.core.tuples import Recorder
from repro.eventloop.loop import MainLoop


def make_recording(n=100, period_ms=50.0):
    sink = io.StringIO()
    rec = Recorder(sink)
    rec.comment("printing test recording")
    for i in range(n):
        t = i * period_ms
        rec.record(t, 50 + 40 * math.sin(i / 8.0), "wave")
        rec.record(t, float(i % 10), "saw")
    return sink.getvalue()


class TestSummary:
    def test_per_signal_statistics(self):
        data = make_recording(n=100)
        summaries = print_summary(data)
        assert set(summaries) == {"wave", "saw"}
        wave = summaries["wave"]
        assert wave.points == 100
        assert 9.0 <= wave.minimum <= 11.0
        assert 89.0 <= wave.maximum <= 91.0
        assert wave.duration_ms == pytest.approx(99 * 50.0)
        saw = summaries["saw"]
        assert saw.minimum == 0.0
        assert saw.maximum == 9.0

    def test_format_summary_lines(self):
        data = make_recording(n=20)
        text = format_summary(print_summary(data))
        assert "wave:" in text and "saw:" in text
        assert "20 points" in text

    def test_empty_recording(self):
        assert print_summary("# nothing\n") == {}

    def test_summary_dataclass_duration(self):
        s = SignalSummary("x", 5, 0, 1, 0.5, 100.0, 400.0)
        assert s.duration_ms == 300.0


class TestPrintRecording:
    def test_ascii_output_produced(self):
        art = print_recording(make_recording())
        assert art.strip()
        assert len(art.splitlines()) > 5

    def test_ppm_written(self, tmp_path):
        path = str(tmp_path / "capture.ppm")
        print_recording(make_recording(), ppm_path=path)
        from repro.gui.render import read_ppm

        canvas = read_ppm(path)
        assert canvas.width == 512
        # The traces painted something that is not background/chrome.
        assert canvas.count_pixels((64, 160, 43)) > 0  # palette green

    def test_reads_from_file_path(self, tmp_path):
        path = tmp_path / "rec.tuples"
        path.write_text(make_recording())
        summaries = print_summary(str(path))
        assert summaries["wave"].points == 100

    def test_live_capture_prints_identically(self, tmp_path):
        """A live scope's recording prints without information loss."""
        loop = MainLoop()
        scope = Scope("live", loop, period_ms=25)
        scope.signal_new(
            func_signal("tone", lambda *_: math.sin(loop.clock.now() / 100.0))
        )
        sink = io.StringIO()
        scope.record_to(Recorder(sink))
        scope.start_polling()
        loop.run_for(3000)
        scope.record_to(None)

        summaries = print_summary(sink.getvalue(), period_ms=25)
        assert summaries["tone"].points == scope.polls
        assert summaries["tone"].minimum == pytest.approx(
            min(scope.channel("tone").raw_values())
        )
