"""Tests for repro.core.channel (per-signal runtime state)."""

import pytest

from repro.core.aggregate import AggregateKind
from repro.core.channel import Channel
from repro.core.signal import (
    Cell,
    SignalSpec,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)


def polled_channel(value=0.0, **kwargs):
    cell = Cell(value)
    return Channel(memory_signal("sig", cell, SignalType.FLOAT, **kwargs)), cell


class TestBasics:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel(buffer_signal("x"), capacity=0)

    def test_name_comes_from_spec(self):
        channel, _ = polled_channel()
        assert channel.name == "sig"

    def test_hidden_spec_starts_invisible(self):
        channel = Channel(memory_signal("x", Cell(), hidden=True))
        assert not channel.visible

    def test_toggle_visible(self):
        channel, _ = polled_channel()
        assert channel.toggle_visible() is False
        assert channel.toggle_visible() is True

    def test_toggle_value_readout(self):
        channel, _ = polled_channel()
        assert channel.toggle_value_readout() is True
        assert channel.show_value


class TestPolling:
    def test_poll_reads_source(self):
        channel, cell = polled_channel(5.0)
        point = channel.poll(time_ms=50, period_ms=50)
        assert point.raw == 5.0
        assert channel.last_value == 5.0

    def test_poll_tracks_changes(self):
        channel, cell = polled_channel(1.0)
        channel.poll(50, 50)
        cell.value = 9.0
        channel.poll(100, 50)
        assert channel.values() == [1.0, 9.0]
        assert channel.times() == [50, 100]

    def test_filter_applied_to_displayed_value(self):
        cell = Cell(0.0)
        channel = Channel(memory_signal("x", cell, SignalType.FLOAT, filter=0.5))
        channel.poll(50, 50)
        cell.value = 10.0
        point = channel.poll(100, 50)
        assert point.raw == 10.0
        assert point.value == 5.0  # 0.5*0 + 0.5*10

    def test_trace_capacity_bounds_history(self):
        channel = Channel(memory_signal("x", Cell(1)), capacity=3)
        for i in range(10):
            channel.poll(i * 50, 50)
        assert len(channel.trace) == 3

    def test_buffered_channel_cannot_poll(self):
        channel = Channel(buffer_signal("x"))
        with pytest.raises(TypeError):
            channel.poll(0, 50)

    def test_poll_counts(self):
        channel, _ = polled_channel()
        channel.poll(50, 50)
        channel.poll(100, 50)
        assert channel.polls == 2
        assert channel.samples == 2


class TestEventAggregation:
    def aggregated(self, kind):
        return Channel(
            SignalSpec(name="ev", type=SignalType.FLOAT, aggregate=kind)
        )

    def test_events_are_aggregated_per_poll(self):
        channel = self.aggregated(AggregateKind.SUM)
        channel.event(10.0)
        channel.event(5.0)
        point = channel.poll(50, 50)
        assert point.raw == 15.0

    def test_empty_interval_holds_previous_value(self):
        """Sample-and-hold (Section 4.2): between events, the held state
        is displayed."""
        channel = self.aggregated(AggregateKind.MAXIMUM)
        channel.event(30.0)
        channel.poll(50, 50)
        point = channel.poll(100, 50)  # no events this interval
        assert point.raw == 30.0
        assert channel.holds == 1

    def test_empty_interval_before_any_event_displays_nothing(self):
        channel = self.aggregated(AggregateKind.MAXIMUM)
        assert channel.poll(50, 50) is None

    def test_event_on_non_aggregated_channel_rejected(self):
        channel, _ = polled_channel()
        with pytest.raises(TypeError):
            channel.event(1.0)

    def test_rate_uses_poll_period(self):
        channel = self.aggregated(AggregateKind.RATE)
        channel.event(100.0)
        point = channel.poll(50, period_ms=50)
        assert point.raw == pytest.approx(2000.0)  # 100 per 50 ms


class TestBufferedSamples:
    def test_accept_sample(self):
        channel = Channel(buffer_signal("x"))
        point = channel.accept_sample(123.0, 7.0)
        assert point.time_ms == 123.0
        assert channel.last_value == 7.0

    def test_unbuffered_rejects_accept(self):
        channel, _ = polled_channel()
        with pytest.raises(TypeError):
            channel.accept_sample(0, 0)

    def test_filter_applies_to_buffered_samples_too(self):
        channel = Channel(buffer_signal("x", filter=0.5))
        channel.accept_sample(0, 0.0)
        point = channel.accept_sample(50, 10.0)
        assert point.value == 5.0


class TestTraceAccess:
    def test_points_pairs(self):
        channel, cell = polled_channel(3.0)
        channel.poll(50, 50)
        assert channel.points() == [(50, 3.0)]

    def test_window_returns_most_recent(self):
        channel, cell = polled_channel(0.0)
        for i in range(5):
            cell.value = float(i)
            channel.poll(i * 50, 50)
        recent = channel.window(2)
        assert [p.raw for p in recent] == [3.0, 4.0]

    def test_window_zero_or_negative(self):
        channel, _ = polled_channel()
        assert channel.window(0) == []
        assert channel.window(-3) == []

    def test_clear_resets_everything(self):
        cell = Cell(5.0)
        channel = Channel(memory_signal("x", cell, SignalType.FLOAT, filter=0.9))
        channel.poll(50, 50)
        channel.clear()
        assert channel.trace == channel.trace.__class__(maxlen=channel.trace.maxlen)
        assert channel.last_value is None
        assert channel.filter.value is None
        assert channel.held_value is None

    def test_raw_vs_filtered_values(self):
        cell = Cell(0.0)
        channel = Channel(memory_signal("x", cell, SignalType.FLOAT, filter=0.5))
        channel.poll(50, 50)
        cell.value = 10.0
        channel.poll(100, 50)
        assert channel.raw_values() == [0.0, 10.0]
        assert channel.values() == [0.0, 5.0]
