"""Tests for repro.core.scope — the central Scope object."""

import io

import pytest

from repro.core.scope import AcquisitionMode, Scope, ScopeError
from repro.core.signal import (
    Cell,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)
from repro.core.tuples import Player, Recorder
from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop


def make_scope(**kwargs):
    loop = MainLoop()
    return Scope("s", loop, **kwargs), loop


class TestConstruction:
    def test_bad_dimensions(self):
        loop = MainLoop()
        with pytest.raises(ValueError):
            Scope("s", loop, width=0)
        with pytest.raises(ValueError):
            Scope("s", loop, height=-1)

    def test_bad_period(self):
        loop = MainLoop()
        with pytest.raises(ValueError):
            Scope("s", loop, period_ms=0)

    def test_visible_seconds(self):
        scope, _ = make_scope(width=200, period_ms=50)
        assert scope.visible_seconds == 10.0


class TestSignalManagement:
    def test_signal_new_and_lookup(self):
        scope, _ = make_scope()
        scope.signal_new(memory_signal("a", Cell(1)))
        assert "a" in scope
        assert scope.channel("a").name == "a"
        assert scope.signal_names == ["a"]

    def test_duplicate_signal_rejected(self):
        scope, _ = make_scope()
        scope.signal_new(memory_signal("a", Cell()))
        with pytest.raises(ScopeError):
            scope.signal_new(memory_signal("a", Cell()))

    def test_dynamic_remove(self):
        scope, _ = make_scope()
        scope.signal_new(memory_signal("a", Cell()))
        scope.signal_remove("a")
        assert "a" not in scope

    def test_remove_unknown(self):
        scope, _ = make_scope()
        with pytest.raises(ScopeError):
            scope.signal_remove("nope")

    def test_add_signal_while_polling(self):
        """Dynamic signal addition on a live scope (Section 1)."""
        scope, loop = make_scope()
        scope.signal_new(memory_signal("a", Cell(1)))
        scope.start_polling()
        loop.run_for(200)
        scope.signal_new(memory_signal("b", Cell(2)))
        loop.run_for(200)
        assert len(scope.channel("b").trace) > 0
        assert len(scope.channel("a").trace) > len(scope.channel("b").trace)


class TestPolling:
    def test_polls_at_period(self):
        scope, loop = make_scope(period_ms=50)
        cell = Cell(5)
        scope.signal_new(memory_signal("a", cell))
        scope.start_polling()
        loop.run_for(1000)
        assert scope.polls == 19  # t=50..950 inside the half-open window
        assert scope.value_of("a") == 5.0

    def test_stop_polling_freezes_display(self):
        scope, loop = make_scope()
        scope.signal_new(memory_signal("a", Cell(1)))
        scope.start_polling()
        loop.run_for(500)
        frozen = scope.polls
        scope.stop_polling()
        loop.run_for(500)
        assert scope.polls == frozen

    def test_start_polling_idempotent(self):
        scope, loop = make_scope()
        scope.start_polling()
        scope.start_polling()
        assert len(loop.sources) == 1

    def test_set_period_restarts_polling(self):
        scope, loop = make_scope(period_ms=50)
        scope.signal_new(memory_signal("a", Cell(1)))
        scope.start_polling()
        loop.run_for(500)
        scope.set_period(10)
        assert scope.polling
        before = scope.polls
        loop.run_for(500)
        assert scope.polls - before >= 45  # ~50 polls at 10 ms

    def test_func_signal_polled(self):
        scope, loop = make_scope()
        calls = []
        scope.signal_new(
            func_signal("f", lambda a, b: calls.append(1) or 42.0)
        )
        scope.start_polling()
        loop.run_for(500)
        assert scope.value_of("f") == 42.0
        assert len(calls) == scope.polls

    def test_event_routing(self):
        from repro.core.aggregate import AggregateKind
        from repro.core.signal import SignalSpec

        scope, loop = make_scope()
        scope.signal_new(
            SignalSpec(name="ev", type=SignalType.FLOAT, aggregate=AggregateKind.EVENTS)
        )
        scope.event("ev")
        scope.event("ev")
        scope.start_polling()
        loop.run_for(100)
        assert scope.value_of("ev") == 2.0


class TestDisplayControls:
    def test_zoom_validation(self):
        scope, _ = make_scope()
        with pytest.raises(ValueError):
            scope.set_zoom(0)
        scope.set_zoom(2.0)
        assert scope.zoom == 2.0

    def test_bias(self):
        scope, _ = make_scope()
        scope.set_bias(-25.0)
        assert scope.bias == -25.0

    def test_delay_reaches_buffer(self):
        scope, _ = make_scope()
        scope.set_delay(300)
        assert scope.buffer.delay_ms == 300

    def test_bad_period(self):
        scope, _ = make_scope()
        with pytest.raises(ValueError):
            scope.set_period(-5)


class TestBufferedSignals:
    def test_push_and_display_after_delay(self):
        scope, loop = make_scope(delay_ms=100, period_ms=50)
        scope.signal_new(buffer_signal("b"))
        scope.start_polling()
        scope.push_sample("b", time_ms=0.0, value=3.0)
        loop.run_for(99)
        assert scope.channel("b").trace == scope.channel("b").trace.__class__(
            maxlen=scope.channel("b").trace.maxlen
        )
        loop.run_for(101)
        assert scope.value_of("b") == 3.0

    def test_late_push_dropped(self):
        scope, loop = make_scope(delay_ms=50)
        scope.signal_new(buffer_signal("b"))
        loop.clock.advance(1000)
        assert scope.push_sample("b", time_ms=0.0, value=1.0) is False

    def test_push_to_unbuffered_rejected(self):
        scope, _ = make_scope()
        scope.signal_new(memory_signal("a", Cell()))
        with pytest.raises(ScopeError):
            scope.push_sample("a", 0, 1.0)

    def test_push_to_unknown_rejected(self):
        scope, _ = make_scope()
        with pytest.raises(ScopeError):
            scope.push_sample("zzz", 0, 1.0)

    def test_samples_removed_signal_discarded(self):
        scope, loop = make_scope(period_ms=50)
        scope.signal_new(buffer_signal("b"))
        scope.push_sample("b", time_ms=loop.clock.now(), value=1.0)
        scope.signal_remove("b")
        scope.start_polling()
        loop.run_for(200)  # must not raise


class TestLostTimeoutCompensation:
    def test_column_advances_past_lost_polls(self):
        """Section 4.5: the scope advances the refresh by lost timeouts."""
        spikes = {50.0: 175.0}  # swallow ~3 poll intervals
        clock = KernelTimerModel(
            VirtualClock(), tick_ms=10.0, latency=lambda t: spikes.pop(t, 0.0)
        )
        loop = MainLoop(clock=clock)
        scope = Scope("s", loop, period_ms=50)
        scope.signal_new(memory_signal("a", Cell(1)))
        scope.start_polling()
        loop.run_until(1000)
        assert scope.lost_timeouts >= 3
        assert scope.column == scope.polls + scope.lost_timeouts

    def test_no_latency_no_lost(self):
        scope, loop = make_scope()
        scope.signal_new(memory_signal("a", Cell(1)))
        scope.start_polling()
        loop.run_for(1000)
        assert scope.lost_timeouts == 0


class TestPlayback:
    def record_sine(self):
        text = io.StringIO()
        rec = Recorder(text)
        for i in range(20):
            rec.record(i * 50.0, float(i), "sig")
        return text.getvalue()

    def test_playback_replays_all_points(self):
        data = self.record_sine()
        scope, loop = make_scope(period_ms=50)
        scope.set_playback_mode(Player(io.StringIO(data)))
        scope.start_polling()
        loop.run_for(2000)
        assert scope.mode is AcquisitionMode.PLAYBACK
        assert len(scope.channel("sig").trace) == 20

    def test_playback_creates_channels_automatically(self):
        scope, loop = make_scope()
        scope.set_playback_mode(Player(io.StringIO("0 1 x\n10 2 y\n")))
        assert "x" in scope and "y" in scope

    def test_playback_preserves_recorded_timestamps(self):
        """The Section 3.3 spacing rule depends on file timestamps being
        carried through to the display verbatim."""
        data = "0 1 sig\n100 2 sig\n200 3 sig\n"
        scope, loop = make_scope(period_ms=50)
        scope.set_playback_mode(Player(io.StringIO(data)))
        scope.start_polling()
        loop.run_for(1000)
        assert scope.channel("sig").times() == [0.0, 100.0, 200.0]

    def test_switching_back_to_polling_clears_player(self):
        scope, loop = make_scope()
        scope.set_playback_mode(Player(io.StringIO("0 1 x\n")))
        scope.set_polling_mode(50)
        assert scope.player is None
        assert scope.mode is AcquisitionMode.POLLING


class TestRecording:
    def test_polled_data_recorded(self):
        scope, loop = make_scope(period_ms=50)
        cell = Cell(5)
        scope.signal_new(memory_signal("a", cell))
        sink = io.StringIO()
        scope.record_to(Recorder(sink))
        scope.start_polling()
        loop.run_for(500)
        lines = sink.getvalue().splitlines()
        assert len(lines) == scope.polls
        assert lines[0] == "50 5 a"

    def test_record_then_replay_roundtrip(self):
        scope, loop = make_scope(period_ms=50)
        cell = Cell(0)
        scope.signal_new(memory_signal("a", cell))
        sink = io.StringIO()
        scope.record_to(Recorder(sink))
        scope.start_polling()
        for i in range(5):
            cell.value = i
            loop.run_for(100)
        scope.record_to(None)

        replay_scope, replay_loop = make_scope(period_ms=50)
        replay_scope.set_playback_mode(Player(io.StringIO(sink.getvalue())))
        replay_scope.start_polling()
        replay_loop.run_for(2000)
        original = scope.channel("a").raw_values()
        replayed = replay_scope.channel("a").raw_values()
        assert replayed == original

    def test_recording_stops_when_detached(self):
        scope, loop = make_scope()
        scope.signal_new(memory_signal("a", Cell(1)))
        sink = io.StringIO()
        scope.record_to(Recorder(sink))
        scope.start_polling()
        loop.run_for(200)
        scope.record_to(None)
        size = len(sink.getvalue())
        loop.run_for(200)
        assert len(sink.getvalue()) == size


class TestManualTick:
    def test_tick_drives_one_poll(self):
        scope, _ = make_scope()
        scope.signal_new(memory_signal("a", Cell(9)))
        scope.tick()
        assert scope.polls == 1
        assert scope.value_of("a") == 9.0
