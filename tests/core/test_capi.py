"""Tests for the Figure 6 C-API compatibility shims."""

from repro.core.capi import (
    G_IO_IN,
    g_io_add_watch,
    g_main_loop,
    gtk_main,
    gtk_main_quit,
    gtk_scope_new,
    gtk_scope_set_polling_mode,
    gtk_scope_signal_new,
    gtk_scope_start_polling,
    gtk_scope_stop_polling,
)
from repro.core.signal import Cell, SignalType, memory_signal
from repro.eventloop.loop import MainLoop
from repro.net.transport import memory_pair


class TestShims:
    def test_default_loop_is_sticky(self):
        loop = MainLoop()
        assert g_main_loop(loop) is loop
        assert g_main_loop() is loop

    def test_scope_new_uses_default_loop(self):
        loop = g_main_loop(MainLoop())
        scope = gtk_scope_new("s", 100, 50)
        assert scope.loop is loop
        assert (scope.width, scope.height) == (100, 50)

    def test_figure6_program_shape(self):
        """The paper's Figure 6 program, ported line for line."""
        loop = g_main_loop(MainLoop())

        elephants = Cell(0)
        elephants_sig = memory_signal(
            "elephants", elephants, SignalType.INTEGER, min=0, max=40
        )

        scope = gtk_scope_new("mxtraf", 200, 100)
        gtk_scope_signal_new(scope, elephants_sig)
        gtk_scope_set_polling_mode(scope, 50)  # sampling period is 50 ms
        gtk_scope_start_polling(scope)

        fd_remote, fd_local = memory_pair(loop.clock)

        def read_program(channel, _cond) -> bool:
            control_info = channel.recv()
            if control_info:
                elephants.value = int(control_info.strip())
            return True

        g_io_add_watch(fd_local, G_IO_IN, read_program)

        # Remote controller sets 16 elephants at t=200ms, then quits us.
        def control(_lost) -> bool:
            fd_remote.send(b"16")
            return False

        loop.timeout_add(200, control)
        loop.timeout_add(800, lambda lost: gtk_main_quit() or False)

        gtk_main(max_iterations=500)

        assert scope.value_of("elephants") == 16.0
        assert scope.polls > 0

    def test_stop_polling_shim(self):
        g_main_loop(MainLoop())
        scope = gtk_scope_new("s")
        gtk_scope_start_polling(scope)
        gtk_scope_stop_polling(scope)
        assert not scope.polling
