"""Tests for repro.core.signal (the GtkScopeSig port)."""

import pytest

from repro.core.aggregate import AggregateKind
from repro.core.signal import (
    SHORT_MAX,
    SHORT_MIN,
    Cell,
    LineMode,
    SignalSpec,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)


class TestCell:
    def test_default_value(self):
        assert Cell().value == 0

    def test_holds_value(self):
        cell = Cell(42)
        cell.value = 7
        assert cell.value == 7

    def test_repr(self):
        assert "42" in repr(Cell(42))


class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SignalSpec(name="", cell=Cell())

    def test_filter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SignalSpec(name="x", cell=Cell(), filter=1.5)
        with pytest.raises(ValueError):
            SignalSpec(name="x", cell=Cell(), filter=-0.1)

    def test_filter_bounds_accepted(self):
        SignalSpec(name="x", cell=Cell(), filter=0.0)
        SignalSpec(name="x", cell=Cell(), filter=1.0)

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            SignalSpec(name="x", cell=Cell(), min=10, max=10)

    def test_func_type_requires_func(self):
        with pytest.raises(ValueError):
            SignalSpec(name="x", type=SignalType.FUNC)

    def test_scalar_type_requires_cell(self):
        with pytest.raises(ValueError):
            SignalSpec(name="x", type=SignalType.INTEGER)

    def test_scalar_with_aggregate_needs_no_cell(self):
        spec = SignalSpec(
            name="x", type=SignalType.FLOAT, aggregate=AggregateKind.SUM
        )
        assert spec.aggregate is AggregateKind.SUM

    def test_span(self):
        assert SignalSpec(name="x", cell=Cell(), min=10, max=40).span == 30


class TestReading:
    def test_integer_truncates(self):
        cell = Cell(7.9)
        spec = memory_signal("x", cell, SignalType.INTEGER)
        assert spec.read() == 7.0

    def test_boolean_maps_to_zero_one(self):
        cell = Cell(True)
        spec = memory_signal("x", cell, SignalType.BOOLEAN)
        assert spec.read() == 1.0
        cell.value = 0
        assert spec.read() == 0.0
        cell.value = "non-empty"  # any truthy value
        assert spec.read() == 1.0

    def test_short_clips_to_int16(self):
        cell = Cell(100_000)
        spec = memory_signal("x", cell, SignalType.SHORT)
        assert spec.read() == SHORT_MAX
        cell.value = -100_000
        assert spec.read() == SHORT_MIN

    def test_float_passthrough(self):
        spec = memory_signal("x", Cell(3.25), SignalType.FLOAT)
        assert spec.read() == 3.25

    def test_func_invoked_with_two_args(self):
        seen = []

        def fn(a, b):
            seen.append((a, b))
            return 9.0

        spec = func_signal("x", fn, arg1="one", arg2=2)
        assert spec.read() == 9.0
        assert seen == [("one", 2)]

    def test_live_cell_updates_visible(self):
        """The paper's core trick: the scope polls application memory."""
        cell = Cell(8)
        spec = memory_signal("elephants", cell, SignalType.INTEGER)
        assert spec.read() == 8.0
        cell.value = 16
        assert spec.read() == 16.0

    def test_buffer_signal_cannot_be_read(self):
        with pytest.raises(TypeError):
            buffer_signal("x").read()


class TestConstructors:
    def test_memory_signal_rejects_func_type(self):
        with pytest.raises(ValueError):
            memory_signal("x", Cell(), SignalType.FUNC)

    def test_memory_signal_rejects_buffer_type(self):
        with pytest.raises(ValueError):
            memory_signal("x", Cell(), SignalType.BUFFER)

    def test_buffer_signal_type(self):
        assert buffer_signal("x").type is SignalType.BUFFER
        assert buffer_signal("x").type.buffered

    def test_unbuffered_types(self):
        for t in (SignalType.INTEGER, SignalType.FLOAT, SignalType.FUNC):
            assert not t.buffered

    def test_kwargs_passthrough(self):
        spec = memory_signal(
            "x", Cell(), min=5, max=50, color="red", line=LineMode.STEP, hidden=True
        )
        assert (spec.min, spec.max, spec.color) == (5, 50, "red")
        assert spec.line is LineMode.STEP
        assert spec.hidden

    def test_paper_example_elephants(self):
        """The exact GtkScopeSig from Section 3.1."""
        elephants = Cell(0)
        spec = SignalSpec(
            name="elephants",
            type=SignalType.INTEGER,
            cell=elephants,
            min=0,
            max=40,
        )
        assert spec.read() == 0.0

    def test_paper_example_cwnd(self):
        """The FUNC signal from Section 3.1: get_cwnd(fd)."""
        fd = 3

        def get_cwnd(sock_fd, _unused):
            return 17.0 if sock_fd == 3 else 0.0

        spec = func_signal("Cwnd", get_cwnd, arg1=fd)
        assert spec.read() == 17.0
