"""Tests for the software phase-lock loop."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.control.pll import (
    PhaseLockLoop,
    PLLConfig,
    ReferenceOscillator,
    wrap_phase,
)

DT = 0.01  # 100 Hz sample rate (the paper's polling ceiling)


def run_locked(pll, ref, steps):
    for _ in range(steps):
        pll.step(ref.advance(DT), DT)


class TestWrapPhase:
    def test_identity_inside_range(self):
        assert wrap_phase(1.0) == pytest.approx(1.0)
        assert wrap_phase(-1.0) == pytest.approx(-1.0)

    def test_wraps_large_positive(self):
        assert wrap_phase(2 * math.pi + 0.5) == pytest.approx(0.5)

    def test_wraps_large_negative(self):
        assert wrap_phase(-2 * math.pi - 0.5) == pytest.approx(-0.5)

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_always_in_half_open_interval(self, phase):
        wrapped = wrap_phase(phase)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(st.floats(min_value=-50.0, max_value=50.0))
    def test_wrap_preserves_angle_mod_2pi(self, phase):
        wrapped = wrap_phase(phase)
        assert math.isclose(
            math.cos(wrapped), math.cos(phase), abs_tol=1e-9
        )
        assert math.isclose(
            math.sin(wrapped), math.sin(phase), abs_tol=1e-9
        )


class TestOscillator:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReferenceOscillator(0)
        osc = ReferenceOscillator(5.0)
        with pytest.raises(ValueError):
            osc.advance(-0.1)
        with pytest.raises(ValueError):
            osc.set_frequency(-1)

    def test_advance_rate(self):
        osc = ReferenceOscillator(1.0)  # one cycle per second
        osc.advance(0.25)
        assert osc.phase == pytest.approx(math.pi / 2)


class TestAcquisition:
    def test_locks_onto_nominal_frequency(self):
        pll = PhaseLockLoop(PLLConfig(nominal_freq_hz=5.0))
        ref = ReferenceOscillator(5.0)
        run_locked(pll, ref, 600)
        assert pll.locked
        assert pll.freq_estimate_hz == pytest.approx(5.0, abs=0.05)
        assert abs(pll.phase_error) < 0.05

    def test_locks_despite_frequency_offset(self):
        pll = PhaseLockLoop(PLLConfig(nominal_freq_hz=5.0))
        ref = ReferenceOscillator(5.5)
        run_locked(pll, ref, 1000)
        assert pll.locked
        assert pll.freq_estimate_hz == pytest.approx(5.5, abs=0.05)

    def test_starts_unlocked(self):
        assert not PhaseLockLoop().locked


class TestFrequencyStep:
    def test_reacquires_after_step(self):
        pll = PhaseLockLoop(PLLConfig(nominal_freq_hz=5.0))
        ref = ReferenceOscillator(5.0)
        run_locked(pll, ref, 600)
        ref.set_frequency(7.0)
        dropped_lock = False
        for _ in range(800):
            pll.step(ref.advance(DT), DT)
            if not pll.locked:
                dropped_lock = True
        assert dropped_lock  # the transient was visible
        assert pll.locked  # and the loop re-acquired
        assert pll.freq_estimate_hz == pytest.approx(7.0, abs=0.05)

    def test_phase_error_spikes_on_step(self):
        pll = PhaseLockLoop(PLLConfig(nominal_freq_hz=5.0))
        ref = ReferenceOscillator(5.0)
        run_locked(pll, ref, 600)
        settled = abs(pll.phase_error)
        ref.set_frequency(8.0)
        peak = 0.0
        for _ in range(200):
            pll.step(ref.advance(DT), DT)
            peak = max(peak, abs(pll.phase_error))
        assert peak > 10 * max(settled, 1e-6)


class TestSignalHooks:
    def test_hooks_mirror_state(self):
        pll = PhaseLockLoop()
        ref = ReferenceOscillator(5.0)
        run_locked(pll, ref, 100)
        assert pll.get_phase_error() == pll.phase_error
        assert pll.get_freq_estimate() == pll.freq_estimate_hz
        assert pll.get_lock() in (0.0, 1.0)

    def test_step_validates_dt(self):
        with pytest.raises(ValueError):
            PhaseLockLoop().step(0.0, 0.0)

    def test_steps_counted(self):
        pll = PhaseLockLoop()
        ref = ReferenceOscillator(5.0)
        run_locked(pll, ref, 42)
        assert pll.steps == 42
