"""Tests for the Section 4.6 overhead measurement harness."""

import pytest

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.workload.loadgen import LoadGenerator, OverheadResult, measure_overhead


class TestLoadGenerator:
    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            LoadGenerator(0)

    def test_counts_iterations(self):
        load = LoadGenerator(chunk_iterations=100)
        load.run_chunk()
        load.run_chunk()
        assert load.iterations == 200

    def test_callback_keeps_source_installed(self):
        assert LoadGenerator().run_chunk() is True

    def test_reset(self):
        load = LoadGenerator(100)
        load.run_chunk()
        load.reset()
        assert load.iterations == 0


class TestOverheadResult:
    def test_overhead_fraction(self):
        result = OverheadResult(
            idle_iterations=1000, loaded_iterations=980, duration_ms=100
        )
        assert result.overhead_fraction == pytest.approx(0.02)
        assert result.overhead_percent == pytest.approx(2.0)

    def test_zero_baseline_rejected(self):
        result = OverheadResult(0, 0, 100)
        with pytest.raises(ValueError):
            result.overhead_fraction


class TestMeasurement:
    def test_validation(self):
        with pytest.raises(ValueError):
            measure_overhead(lambda loop: None, duration_ms=0)
        with pytest.raises(ValueError):
            measure_overhead(lambda loop: None, repeats=0)

    def test_empty_setup_has_negligible_overhead(self):
        # Five interleaved repeats: the median pair must land inside the
        # noise band even when the box is busy (single-core CI machines
        # flake at two repeats — any background tick skews one pair).
        result = measure_overhead(
            lambda loop: None, duration_ms=120, repeats=5
        )
        assert result.idle_iterations > 0
        assert abs(result.overhead_percent) < 15.0  # noise band only

    def test_scope_polling_costs_something_measurable(self):
        """A 1 ms period scope must cost more than a 100 ms one; the
        real calibrated run lives in benchmarks/bench_overhead.py.

        The indexed scheduler (PR 2) cut per-tick dispatch cost enough
        that a small scope's overhead sits near measurement noise on a
        busy machine, so this uses a wide scope (32 signals) and a
        longer window to keep the ordering signal above the noise.
        """

        def setup(period_ms):
            def attach(loop):
                scope = Scope("bench", loop, period_ms=period_ms)
                for i in range(32):
                    scope.signal_new(memory_signal(f"s{i}", Cell(i)))
                scope.start_polling()

            return attach

        fast = measure_overhead(setup(1.0), duration_ms=250, repeats=5)
        slow = measure_overhead(setup(100.0), duration_ms=250, repeats=5)
        assert fast.loaded_iterations < fast.idle_iterations
        # Allow measurement noise, but the ordering must hold.  The
        # band is wide: on a busy single-core machine the median pair
        # still carries a few percent of scheduler noise.
        assert fast.overhead_fraction > slow.overhead_fraction - 0.05
