"""Tests for the widget tree and click routing."""

import pytest

from repro.gui.canvas import Canvas
from repro.gui.geometry import Rect
from repro.gui.widget import ClickButton, Label, MouseButton, SpinWidget, Widget


class TestHitTesting:
    def test_hit_finds_deepest_child(self):
        root = Widget(Rect(0, 0, 100, 100))
        panel = root.add(Widget(Rect(10, 10, 50, 50)))
        button = panel.add(Widget(Rect(20, 20, 10, 10)))
        assert root.hit(25, 25) is button
        assert root.hit(12, 12) is panel
        assert root.hit(90, 90) is root
        assert root.hit(200, 200) is None

    def test_invisible_widgets_not_hit(self):
        root = Widget(Rect(0, 0, 100, 100))
        child = root.add(Widget(Rect(0, 0, 50, 50)))
        child.visible = False
        assert root.hit(25, 25) is root

    def test_later_children_on_top(self):
        root = Widget(Rect(0, 0, 100, 100))
        below = root.add(Widget(Rect(0, 0, 50, 50)))
        above = root.add(Widget(Rect(0, 0, 50, 50)))
        assert root.hit(10, 10) is above


class TestClickRouting:
    def test_click_reaches_handler(self):
        root = Widget(Rect(0, 0, 100, 100))
        pressed = []
        root.add(
            ClickButton(Rect(10, 10, 20, 10), "ok", on_left=lambda: pressed.append(1))
        )
        assert root.click(15, 15) is True
        assert pressed == [1]

    def test_unhandled_click_bubbles_to_parent(self):
        pressed = []
        root = ClickButton(
            Rect(0, 0, 100, 100), "root", on_left=lambda: pressed.append("root")
        )
        root.add(Widget(Rect(10, 10, 20, 20)))  # inert child
        assert root.click(15, 15) is True
        assert pressed == ["root"]

    def test_click_outside_everything(self):
        root = Widget(Rect(0, 0, 100, 100))
        assert root.click(500, 500) is False

    def test_left_and_right_handlers_distinct(self):
        """The Figure 1 interaction: left toggles, right opens params."""
        events = []
        btn = ClickButton(
            Rect(0, 0, 10, 10),
            "sig",
            on_left=lambda: events.append("left"),
            on_right=lambda: events.append("right"),
        )
        btn.on_click(MouseButton.LEFT)
        btn.on_click(MouseButton.RIGHT)
        assert events == ["left", "right"]
        assert btn.presses == 2

    def test_missing_handler_not_consumed(self):
        btn = ClickButton(Rect(0, 0, 10, 10), "x", on_left=lambda: None)
        assert btn.on_click(MouseButton.RIGHT) is False


class TestLabel:
    def test_static_text(self):
        label = Label(Rect(0, 0, 50, 10), "hello")
        assert label.current_text() == "hello"

    def test_supplier_text(self):
        state = {"v": 1}
        label = Label(Rect(0, 0, 50, 10), supplier=lambda: f"v={state['v']}")
        assert label.current_text() == "v=1"
        state["v"] = 2
        assert label.current_text() == "v=2"

    def test_draw_blits_text(self):
        canvas = Canvas(60, 12)
        Label(Rect(0, 0, 50, 10), "HI", color="white").draw(canvas)
        assert canvas.count_pixels((255, 255, 255)) > 5


class TestSpinWidget:
    def make(self, **kwargs):
        state = {"v": 10.0}
        spin = SpinWidget(
            Rect(0, 0, 40, 10),
            "zoom",
            get=lambda: state["v"],
            set_=lambda v: state.update(v=v),
            **kwargs,
        )
        return spin, state

    def test_spin_steps(self):
        spin, state = self.make(step=2.0)
        spin.spin(3)
        assert state["v"] == 16.0
        spin.spin(-1)
        assert state["v"] == 14.0

    def test_bounds_clamp(self):
        spin, state = self.make(step=5.0, minimum=0.0, maximum=20.0)
        spin.spin(10)
        assert state["v"] == 20.0
        spin.spin(-100)
        assert state["v"] == 0.0

    def test_click_maps_to_spin(self):
        spin, state = self.make(step=1.0)
        spin.on_click(MouseButton.LEFT)
        assert state["v"] == 11.0
        spin.on_click(MouseButton.RIGHT)
        assert state["v"] == 10.0

    def test_set_direct(self):
        spin, state = self.make(minimum=0.0, maximum=100.0)
        assert spin.set(55.0) == 55.0
        assert spin.value == 55.0
