"""Tests for the framebuffer canvas."""

import pytest
from hypothesis import given, strategies as st

from repro.gui.canvas import Canvas
from repro.gui.color import color_rgb
from repro.gui.geometry import Rect

RED = (255, 0, 0)
WHITE = (255, 255, 255)
coords = st.integers(min_value=-50, max_value=150)


class TestBasics:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Canvas(0, 10)

    def test_starts_as_background(self):
        canvas = Canvas(4, 4, background=(1, 2, 3))
        assert canvas.get_pixel(0, 0) == (1, 2, 3)
        assert canvas.count_pixels((1, 2, 3)) == 16

    def test_set_get_pixel(self):
        canvas = Canvas(10, 10)
        canvas.set_pixel(3, 4, RED)
        assert canvas.get_pixel(3, 4) == RED

    def test_out_of_bounds_set_is_silent(self):
        canvas = Canvas(10, 10)
        canvas.set_pixel(-1, 0, RED)
        canvas.set_pixel(0, 100, RED)
        assert canvas.count_pixels(RED) == 0

    def test_out_of_bounds_get_raises(self):
        with pytest.raises(IndexError):
            Canvas(10, 10).get_pixel(10, 0)

    def test_clear_to_color(self):
        canvas = Canvas(4, 4)
        canvas.set_pixel(1, 1, RED)
        canvas.clear((9, 9, 9))
        assert canvas.count_pixels((9, 9, 9)) == 16


class TestLines:
    def test_hline(self):
        canvas = Canvas(10, 10)
        canvas.hline(2, 7, 5, RED)
        assert canvas.count_pixels(RED) == 6
        assert canvas.column_rows(2, RED) == [5]

    def test_hline_reversed_endpoints(self):
        canvas = Canvas(10, 10)
        canvas.hline(7, 2, 5, RED)
        assert canvas.count_pixels(RED) == 6

    def test_vline(self):
        canvas = Canvas(10, 10)
        canvas.vline(4, 1, 8, RED)
        assert canvas.column_rows(4, RED) == list(range(1, 9))

    def test_lines_clip(self):
        canvas = Canvas(10, 10)
        canvas.hline(-100, 100, 5, RED)
        assert canvas.count_pixels(RED) == 10
        canvas.vline(5, -100, 100, WHITE)
        assert len(canvas.column_rows(5, WHITE)) == 10  # full clipped column
        assert canvas.count_pixels(RED) == 9  # (5, 5) overwritten

    def test_diagonal_line_connects_endpoints(self):
        canvas = Canvas(10, 10)
        canvas.line(0, 0, 9, 9, RED)
        assert canvas.get_pixel(0, 0) == RED
        assert canvas.get_pixel(9, 9) == RED
        assert canvas.get_pixel(5, 5) == RED
        assert canvas.count_pixels(RED) == 10

    def test_polyline(self):
        canvas = Canvas(10, 10)
        canvas.polyline([(0, 0), (4, 0), (4, 4)], RED)
        assert canvas.get_pixel(2, 0) == RED
        assert canvas.get_pixel(4, 2) == RED

    def test_polyline_single_point_draws_nothing(self):
        canvas = Canvas(10, 10)
        canvas.polyline([(5, 5)], RED)
        assert canvas.count_pixels(RED) == 0

    def test_steps_hold_previous_level(self):
        canvas = Canvas(10, 10)
        canvas.steps([(0, 8), (4, 2), (8, 2)], RED)
        # Horizontal hold at y=8 from x=0..4.
        assert canvas.get_pixel(2, 8) == RED
        # Jump at x=4 spans rows 2..8.
        assert canvas.column_rows(4, RED) == list(range(2, 9))

    def test_points_mode(self):
        canvas = Canvas(10, 10)
        canvas.points([(1, 1), (3, 3)], RED)
        assert canvas.count_pixels(RED) == 2


class TestAreas:
    def test_fill_rect(self):
        canvas = Canvas(10, 10)
        canvas.fill_rect(Rect(2, 3, 4, 5), RED)
        assert canvas.count_pixels(RED) == 20

    def test_fill_rect_clips(self):
        canvas = Canvas(10, 10)
        canvas.fill_rect(Rect(8, 8, 10, 10), RED)
        assert canvas.count_pixels(RED) == 4

    def test_frame_rect(self):
        canvas = Canvas(10, 10)
        canvas.frame_rect(Rect(0, 0, 10, 10), RED)
        assert canvas.count_pixels(RED) == 36  # perimeter of 10x10

    def test_grid_spacing(self):
        canvas = Canvas(20, 20)
        canvas.grid(Rect(0, 0, 20, 20), x_step=10, y_step=10, color=RED)
        assert canvas.get_pixel(0, 5) == RED
        assert canvas.get_pixel(10, 5) == RED
        assert canvas.get_pixel(5, 10) == RED

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            Canvas(10, 10).grid(Rect(0, 0, 5, 5), 0, 5)

    def test_rulers(self):
        canvas = Canvas(20, 20)
        canvas.ruler_x(Rect(0, 0, 20, 20), tick_every_px=5, color=RED)
        assert canvas.get_pixel(0, 19) == RED
        assert canvas.get_pixel(5, 19) == RED
        canvas.ruler_y(Rect(0, 0, 20, 20), tick_every_px=5, color=WHITE)
        assert canvas.get_pixel(0, 5) == WHITE


class TestText:
    def test_text_draws_pixels(self):
        canvas = Canvas(60, 10)
        end = canvas.text(0, 0, "CWND", WHITE)
        assert end == 24  # 4 chars * 6 px advance
        assert canvas.count_pixels(WHITE) > 20

    def test_text_width(self):
        assert Canvas(10, 10).text_width("abc") == 18

    def test_text_clips_at_edges(self):
        canvas = Canvas(8, 8)
        canvas.text(5, 5, "WWW", WHITE)  # runs off both edges


class TestRobustness:
    @given(coords, coords, coords, coords)
    def test_line_never_raises_or_escapes(self, x0, y0, x1, y1):
        canvas = Canvas(100, 100)
        canvas.line(x0, y0, x1, y1, RED)
        # all red pixels are inside the canvas by construction of the
        # buffer; the property is simply that no exception occurred and
        # pixel counts are sane
        assert 0 <= canvas.count_pixels(RED) <= 100 * 100

    @given(st.lists(st.tuples(coords, coords), max_size=30))
    def test_polyline_never_raises(self, pts):
        canvas = Canvas(100, 100)
        canvas.polyline(pts, RED)
        canvas.steps(pts, WHITE)
        canvas.points(pts, (0, 255, 0))


class TestColors:
    def test_named_colors(self):
        assert color_rgb("red") == (220, 50, 47)
        assert color_rgb("WHITE") == (255, 255, 255)

    def test_hex_colors(self):
        assert color_rgb("#0a141e") == (10, 20, 30)

    def test_unknown_color(self):
        with pytest.raises(ValueError):
            color_rgb("chartreuse-ish")
        with pytest.raises(ValueError):
            color_rgb("#12345")

    def test_palette_cycles(self):
        from repro.gui.color import PALETTE, palette_color

        assert palette_color(0) == palette_color(len(PALETTE))
        assert palette_color(0) != palette_color(1)
