"""Tests for color resolution and the default palette."""

import itertools

import pytest

from repro.gui.color import PALETTE, color_rgb, palette_color, palette_cycle


class TestColorResolution:
    def test_all_palette_names_resolve(self):
        for name in PALETTE:
            r, g, b = color_rgb(name)
            assert all(0 <= c <= 255 for c in (r, g, b))

    def test_case_and_whitespace_insensitive(self):
        assert color_rgb("  Red ") == color_rgb("red")

    def test_grey_gray_aliases(self):
        assert color_rgb("grey") == color_rgb("gray")
        assert color_rgb("lightgrey") == color_rgb("lightgray")

    def test_hex_uppercase(self):
        assert color_rgb("#FF00aa") == (255, 0, 170)

    def test_malformed_hex(self):
        with pytest.raises(ValueError):
            color_rgb("#GGGGGG")
        with pytest.raises(ValueError):
            color_rgb("#abcd")


class TestPalette:
    def test_cycle_matches_indexing(self):
        cycle = palette_cycle()
        for i, color in zip(range(2 * len(PALETTE) + 3), cycle):
            assert color == palette_color(i)

    def test_adjacent_palette_colors_differ(self):
        for i in range(len(PALETTE)):
            assert palette_color(i) != palette_color(i + 1)

    def test_cycle_is_infinite(self):
        taken = list(itertools.islice(palette_cycle(), 50))
        assert len(taken) == 50
