"""Tests for the frequency-domain display widget."""

import math

import pytest

from repro.core.channel import Channel
from repro.core.scope import Scope
from repro.core.signal import buffer_signal, func_signal
from repro.eventloop.loop import MainLoop
from repro.gui.spectrum_widget import SpectrumWidget


def tone_channel(freq_hz=8.0, period_ms=10.0, n=512):
    channel = Channel(buffer_signal("tone"))
    for i in range(n):
        t = i * period_ms
        channel.accept_sample(t, math.sin(2 * math.pi * freq_hz * t / 1000.0))
    return channel


class TestCompute:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpectrumWidget(tone_channel(), 10.0, max_samples=1)

    def test_spectrum_peak_matches_tone(self):
        widget = SpectrumWidget(tone_channel(freq_hz=8.0), period_ms=10.0)
        spec = widget.compute()
        assert spec is not None
        assert spec.peak()[0] == pytest.approx(8.0, abs=0.3)

    def test_empty_channel_returns_none(self):
        widget = SpectrumWidget(Channel(buffer_signal("x")), 10.0)
        assert widget.compute() is None

    def test_record_length_bounded(self):
        channel = tone_channel(n=2000)
        widget = SpectrumWidget(channel, 10.0, max_samples=128)
        widget.compute()
        assert len(widget.last_spectrum.magnitudes) <= 128 // 2 + 1


class TestRender:
    def test_renders_bars_and_annotation(self):
        widget = SpectrumWidget(tone_channel(), period_ms=10.0)
        canvas = widget.render()
        assert canvas.count_pixels((64, 160, 43)) > 20  # green bars
        assert canvas.count_pixels((255, 255, 255)) > 0  # title text

    def test_renders_no_data_placeholder(self):
        widget = SpectrumWidget(Channel(buffer_signal("x")), 10.0)
        canvas = widget.render()  # must not raise
        assert canvas.width == widget.rect.width

    def test_bar_heights_follow_magnitude(self):
        """The peak bin's column must be the tallest bar."""
        widget = SpectrumWidget(tone_channel(freq_hz=8.0), period_ms=10.0)
        canvas = widget.render()
        plot = widget.plot_rect
        heights = []
        for x in range(plot.x, plot.right):
            rows = canvas.column_rows(x, (64, 160, 43))
            heights.append(len(rows))
        spec = widget.last_spectrum
        peak_bin = int(spec.magnitudes.argmax())
        peak_px = round(
            peak_bin / (len(spec.magnitudes) - 1) * (plot.width - 1)
        )
        window = heights[max(0, peak_px - 2) : peak_px + 3]
        assert max(window) == max(heights)


class TestEndToEnd:
    def test_scope_trace_through_widget(self):
        """Time-domain scope -> frequency view, like toggling FFT mode."""
        loop = MainLoop()
        scope = Scope("fft", loop, period_ms=10)
        scope.signal_new(
            func_signal(
                "sig",
                lambda *_: math.sin(2 * math.pi * 12.0 * loop.clock.now() / 1000.0),
                min=-1,
                max=1,
            )
        )
        scope.start_polling()
        loop.run_for(6000)
        widget = SpectrumWidget(scope.channel("sig"), scope.period_ms)
        spec = widget.compute()
        assert spec.peak()[0] == pytest.approx(12.0, abs=0.4)
        assert spec.nyquist_hz == pytest.approx(50.0)
