"""Tests for the 5x7 bitmap font."""

import pytest

from repro.gui.font import UNKNOWN, glyph_rows, known_characters


class TestGlyphs:
    def test_every_known_glyph_has_seven_rows_of_five_bits(self):
        for ch in known_characters():
            rows = glyph_rows(ch)
            assert len(rows) == 7
            for row in rows:
                assert 0 <= row < 32  # 5 bits

    def test_digits_and_uppercase_covered(self):
        known = known_characters()
        for ch in "0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ":
            assert ch in known

    def test_lowercase_maps_to_uppercase(self):
        assert glyph_rows("a") == glyph_rows("A")
        assert glyph_rows("z") == glyph_rows("Z")

    def test_unknown_renders_box(self):
        assert glyph_rows("é") == UNKNOWN
        assert glyph_rows("~") == UNKNOWN

    def test_space_is_blank(self):
        assert all(row == 0 for row in glyph_rows(" "))

    def test_multichar_rejected(self):
        with pytest.raises(ValueError):
            glyph_rows("ab")
        with pytest.raises(ValueError):
            glyph_rows("")

    def test_distinct_letters_have_distinct_shapes(self):
        shapes = {glyph_rows(c) for c in "ABCDEFGHIJKLMNOPQRSTUVWXYZ"}
        assert len(shapes) == 26

    def test_signal_name_characters_covered(self):
        """Characters appearing in the paper's signal names and labels."""
        known = known_characters()
        for ch in "CWND elephants_0.5:%()=-+/[]":
            if ch != " ":
                assert ch in known or ch.upper() in known
