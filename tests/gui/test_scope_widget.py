"""Tests for the composite ScopeWidget (Figure 1)."""

import io

import pytest

from repro.core.scope import Scope
from repro.core.signal import Cell, LineMode, buffer_signal, memory_signal
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop
from repro.gui.scope_widget import ScopeWidget
from repro.gui.widget import MouseButton


def make(period_ms=50, **signal_kwargs):
    loop = MainLoop()
    scope = Scope("test", loop, width=200, height=100, period_ms=period_ms)
    cell = Cell(50.0)
    scope.signal_new(memory_signal("sig", cell, min=0, max=100, **signal_kwargs))
    return scope, loop, cell


class TestLayoutAndRender:
    def test_render_produces_canvas_of_declared_size(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        canvas = widget.render()
        assert canvas.width == scope.width
        assert canvas.height == widget.rect.height

    def test_render_with_no_signals(self):
        loop = MainLoop()
        scope = Scope("empty", loop, width=100, height=50)
        ScopeWidget(scope).render()  # must not raise

    def test_px_per_period_validation(self):
        scope, _, _ = make()
        with pytest.raises(ValueError):
            ScopeWidget(scope, px_per_period=0)

    def test_refresh_layout_tracks_signal_count(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        before = widget.rect.height
        scope.signal_new(memory_signal("extra", Cell(1)))
        widget.refresh_layout()
        assert widget.rect.height > before


class TestTracePixels:
    def test_one_pixel_per_polling_period(self):
        """Section 3.1: data is displayed one pixel apart per period."""
        scope, loop, _ = make(period_ms=50)
        scope.start_polling()
        loop.run_for(500)
        widget = ScopeWidget(scope)
        xs = [x for x, _ in widget.trace_pixels(scope.channel("sig"))]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert all(gap == 1 for gap in gaps)
        assert xs[-1] >= scope.width - 2  # newest sample at the right edge

    def test_playback_spacing_rule(self):
        """Section 3.3: 100 ms file data at a 50 ms period = 2 px apart."""
        data = "".join(f"{t} {v}\n" for t, v in [(0, 10), (100, 20), (200, 30)])
        loop = MainLoop()
        scope = Scope("playback", loop, width=200, height=100)
        scope.set_playback_mode(Player(io.StringIO(data)), period_ms=50)
        scope.start_polling()
        loop.run_for(1000)
        widget = ScopeWidget(scope)
        xs = [x for x, _ in widget.trace_pixels(scope.channel("signal"))]
        gaps = [b - a for a, b in zip(xs, xs[1:])]
        assert gaps == [2, 2]

    def test_replay_at_matching_period_is_one_px(self):
        data = "".join(f"{t} {v}\n" for t, v in [(0, 10), (100, 20), (200, 30)])
        loop = MainLoop()
        scope = Scope("playback", loop, width=200, height=100)
        scope.set_playback_mode(Player(io.StringIO(data)), period_ms=100)
        scope.start_polling()
        loop.run_for(1000)
        widget = ScopeWidget(scope)
        xs = [x for x, _ in widget.trace_pixels(scope.channel("signal"))]
        assert [b - a for a, b in zip(xs, xs[1:])] == [1, 1]

    def test_old_samples_scroll_off_left_edge(self):
        scope, loop, _ = make(period_ms=50)
        scope.start_polling()
        loop.run_for(50 * 500)  # 500 polls >> 200 px width
        widget = ScopeWidget(scope)
        pixels = widget.trace_pixels(scope.channel("sig"))
        assert len(pixels) <= scope.width
        assert all(0 <= x < scope.width for x, _ in pixels)

    def test_value_maps_to_height(self):
        scope, loop, cell = make()
        cell.value = 100.0  # top of range
        scope.tick()
        widget = ScopeWidget(scope)
        _, y = widget.trace_pixels(scope.channel("sig"))[-1]
        assert y == widget.canvas_rect.y  # top row of the plot area

    def test_zoom_moves_pixels(self):
        scope, loop, cell = make()
        cell.value = 40.0
        scope.tick()
        widget = ScopeWidget(scope)
        _, y1 = widget.trace_pixels(scope.channel("sig"))[-1]
        scope.set_zoom(2.0)
        _, y2 = widget.trace_pixels(scope.channel("sig"))[-1]
        assert y2 < y1  # 40% * 2 = 80%: higher on screen


class TestInteractions:
    def test_left_click_toggles_trace(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.click_signal_name("sig", MouseButton.LEFT)
        assert not scope.channel("sig").visible
        widget.click_signal_name("sig", MouseButton.LEFT)
        assert scope.channel("sig").visible

    def test_hidden_trace_not_drawn(self):
        scope, loop, cell = make(color="red")
        scope.start_polling()
        loop.run_for(1000)  # enough points for a drawable trace
        widget = ScopeWidget(scope)
        visible = widget.render().count_pixels((220, 50, 47))
        widget.click_signal_name("sig", MouseButton.LEFT)
        hidden_count = widget.render().count_pixels((220, 50, 47))
        assert visible > hidden_count  # trace gone; button frame remains

    def test_right_click_opens_parameter_window(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.click_signal_name("sig", MouseButton.RIGHT)
        assert len(widget.open_windows) == 1
        assert widget.open_windows[0].channel is scope.channel("sig")

    def test_value_button_toggles_readout(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.click_value_button("sig")
        assert scope.channel("sig").show_value

    def test_value_readout_rendered_when_enabled(self):
        scope, loop, cell = make(color="green")
        cell.value = 77.0
        scope.tick()
        widget = ScopeWidget(scope)
        base = widget.render().count_pixels((64, 160, 43))
        widget.click_value_button("sig")
        with_readout = widget.render().count_pixels((64, 160, 43))
        assert with_readout > base  # the "77" text appears in trace color

    def test_unknown_signal_click(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        with pytest.raises(KeyError):
            widget.click_signal_name("nope")
        with pytest.raises(KeyError):
            widget.click_value_button("nope")


class TestControlWidgets:
    def test_zoom_spin_wired_to_scope(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.zoom_widget.spin(2)
        assert scope.zoom == 1.5  # 2 steps of 0.25

    def test_bias_spin(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.bias_widget.spin(-2)
        assert scope.bias == -10.0

    def test_period_spin_restarts_polling(self):
        scope, loop, _ = make()
        scope.start_polling()
        widget = ScopeWidget(scope)
        widget.period_widget.spin(1)
        assert scope.period_ms == 60.0
        assert scope.polling

    def test_delay_spin(self):
        scope, loop, _ = make()
        widget = ScopeWidget(scope)
        widget.delay_widget.spin(2)
        assert scope.buffer.delay_ms == 100.0


class TestLineModes:
    def test_all_line_modes_render(self):
        for mode in LineMode:
            loop = MainLoop()
            scope = Scope("m", loop, width=100, height=60)
            cell = Cell(10.0)
            scope.signal_new(
                memory_signal("s", cell, min=0, max=100, line=mode, color="red")
            )
            scope.start_polling()
            for i in range(20):
                cell.value = (i * 13) % 90
                loop.run_for(50)
            widget = ScopeWidget(scope)
            assert widget.render().count_pixels((220, 50, 47)) > 0
