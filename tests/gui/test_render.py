"""Tests for ASCII and PPM/PGM output backends."""

import io

import pytest

from repro.gui.canvas import Canvas
from repro.gui.render import ascii_render, read_ppm, write_pgm, write_ppm


class TestAscii:
    def test_black_canvas_is_spaces(self):
        art = ascii_render(Canvas(50, 20))
        assert set(art) <= {" ", "\n"}

    def test_white_canvas_is_bright(self):
        canvas = Canvas(50, 20, background=(255, 255, 255))
        art = ascii_render(canvas)
        assert "@" in art

    def test_trace_appears(self):
        canvas = Canvas(100, 40)
        canvas.hline(0, 99, 20, (255, 255, 255))
        art = ascii_render(canvas, max_width=50, max_height=20)
        assert any(ch not in " \n" for ch in art)

    def test_dimensions_bounded(self):
        canvas = Canvas(500, 300)
        art = ascii_render(canvas, max_width=80, max_height=24)
        lines = art.splitlines()
        assert len(lines) <= 40  # aspect-corrected but bounded-ish
        assert all(len(line) <= 81 for line in lines)

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            ascii_render(Canvas(10, 10), max_width=0)


class TestPPM:
    def test_header_and_size(self):
        canvas = Canvas(7, 5)
        buf = io.BytesIO()
        write_ppm(canvas, buf)
        data = buf.getvalue()
        assert data.startswith(b"P6\n7 5\n255\n")
        assert len(data) == len(b"P6\n7 5\n255\n") + 7 * 5 * 3

    def test_roundtrip(self):
        canvas = Canvas(9, 6, background=(10, 20, 30))
        canvas.set_pixel(3, 2, (200, 100, 50))
        buf = io.BytesIO()
        write_ppm(canvas, buf)
        buf.seek(0)
        restored = read_ppm(buf)
        assert restored.get_pixel(3, 2) == (200, 100, 50)
        assert restored.get_pixel(0, 0) == (10, 20, 30)

    def test_file_path_sink(self, tmp_path):
        path = str(tmp_path / "img.ppm")
        write_ppm(Canvas(4, 4), path)
        restored = read_ppm(path)
        assert (restored.width, restored.height) == (4, 4)

    def test_read_rejects_non_ppm(self):
        with pytest.raises(ValueError):
            read_ppm(io.BytesIO(b"P5\n1 1\n255\n\x00"))


class TestPGM:
    def test_header_and_size(self):
        buf = io.BytesIO()
        write_pgm(Canvas(8, 4), buf)
        data = buf.getvalue()
        assert data.startswith(b"P5\n8 4\n255\n")
        assert len(data) == len(b"P5\n8 4\n255\n") + 8 * 4

    def test_luminance_weighting(self):
        canvas = Canvas(1, 1, background=(0, 255, 0))  # green is bright
        buf = io.BytesIO()
        write_pgm(canvas, buf)
        grey = buf.getvalue()[-1]
        assert grey == int(0.587 * 255)
