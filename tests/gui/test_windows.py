"""Tests for the Figure 2/3 parameter windows."""

import pytest

from repro.core.channel import Channel
from repro.core.params import ControlParameter, ParameterError, ParameterStore
from repro.core.signal import Cell, LineMode, memory_signal
from repro.gui.windows import ControlParametersWindow, SignalParametersWindow


def make_channel(**kwargs):
    return Channel(memory_signal("CWND", Cell(5.0), min=0, max=40, **kwargs))


class TestSignalParametersWindow:
    def test_values_reflect_spec(self):
        window = SignalParametersWindow(make_channel(color="green", filter=0.5))
        values = window.values()
        assert values["name"] == "CWND"
        assert values["color"] == "green"
        assert (values["min"], values["max"]) == (0, 40)
        assert values["filter"] == 0.5
        assert values["hidden"] is False

    def test_set_color_validates(self):
        window = SignalParametersWindow(make_channel())
        window.set_color("red")
        assert window.channel.spec.color == "red"
        with pytest.raises(ValueError):
            window.set_color("not-a-color")

    def test_set_color_none_resets_to_palette(self):
        window = SignalParametersWindow(make_channel(color="red"))
        window.set_color(None)
        assert window.channel.spec.color is None

    def test_set_range_validates_order(self):
        window = SignalParametersWindow(make_channel())
        window.set_range(10, 90)
        assert (window.channel.spec.min, window.channel.spec.max) == (10, 90)
        with pytest.raises(ValueError):
            window.set_range(50, 50)

    def test_set_line_mode(self):
        window = SignalParametersWindow(make_channel())
        window.set_line(LineMode.STEP)
        assert window.channel.spec.line is LineMode.STEP

    def test_set_hidden_affects_channel_visibility(self):
        window = SignalParametersWindow(make_channel())
        window.set_hidden(True)
        assert not window.channel.visible
        window.set_hidden(False)
        assert window.channel.visible

    def test_set_filter_swaps_filter_preserving_output(self):
        channel = make_channel()
        channel.poll(50, 50)  # filter state = 5.0
        window = SignalParametersWindow(channel)
        window.set_filter(0.9)
        assert channel.spec.filter == 0.9
        # Next sample filters from the preserved value, no jump to x.
        point = channel.poll(100, 50)
        assert point.value == pytest.approx(0.9 * 5.0 + 0.1 * 5.0)

    def test_set_filter_validates(self):
        window = SignalParametersWindow(make_channel())
        with pytest.raises(ValueError):
            window.set_filter(2.0)

    def test_audit_trail(self):
        window = SignalParametersWindow(make_channel())
        window.set_color("blue")
        window.set_hidden(True)
        assert window.applied == ["color", "hidden"]

    def test_render_shows_fields(self):
        canvas = SignalParametersWindow(make_channel()).render()
        assert canvas.height >= 7 * 12  # one row per field + title
        assert canvas.count_pixels((255, 255, 255)) > 0


class TestControlParametersWindow:
    def make_store(self):
        store = ParameterStore()
        store.add(ControlParameter("elephants", cell=Cell(8), minimum=0, maximum=40))
        store.add(ControlParameter("mice", cell=Cell(0), minimum=0, maximum=100))
        return store

    def test_rows(self):
        window = ControlParametersWindow(self.make_store())
        assert window.rows() == {"elephants": 8.0, "mice": 0.0}

    def test_set_writes_through_store(self):
        store = self.make_store()
        window = ControlParametersWindow(store)
        window.set("elephants", 16)
        assert store.get("elephants") == 16.0

    def test_bounds_still_enforced(self):
        window = ControlParametersWindow(self.make_store())
        with pytest.raises(ParameterError):
            window.set("elephants", 1000)

    def test_step_buttons(self):
        window = ControlParametersWindow(self.make_store())
        window.step_up("elephants", 3)
        assert window.rows()["elephants"] == 11.0
        window.step_down("elephants")
        assert window.rows()["elephants"] == 10.0

    def test_listeners_see_window_edits(self):
        store = self.make_store()
        seen = []
        store.add_listener(lambda name, value: seen.append((name, value)))
        ControlParametersWindow(store).set("mice", 5)
        assert seen == [("mice", 5.0)]

    def test_render(self):
        canvas = ControlParametersWindow(self.make_store()).render()
        assert canvas.height == 12 * 3  # title + two rows
        assert canvas.count_pixels((255, 255, 255)) > 0
