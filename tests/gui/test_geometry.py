"""Tests for rects and the zoom/bias value transform."""

import pytest
from hypothesis import given, strategies as st

from repro.gui.geometry import Rect, ValueTransform


class TestRect:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 10)
        with pytest.raises(ValueError):
            Rect(0, 0, 10, -1)

    def test_edges(self):
        r = Rect(10, 20, 30, 40)
        assert r.right == 40
        assert r.bottom == 60

    def test_contains_half_open(self):
        r = Rect(0, 0, 10, 10)
        assert r.contains(0, 0)
        assert r.contains(9, 9)
        assert not r.contains(10, 9)
        assert not r.contains(-1, 5)

    def test_inset(self):
        r = Rect(0, 0, 10, 10).inset(2)
        assert (r.x, r.y, r.width, r.height) == (2, 2, 6, 6)

    def test_inset_too_large(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 10, 10).inset(5)


class TestValueTransform:
    def test_validation(self):
        with pytest.raises(ValueError):
            ValueTransform(vmin=10, vmax=10)
        with pytest.raises(ValueError):
            ValueTransform(vmin=0, vmax=100, zoom=0)
        with pytest.raises(ValueError):
            ValueTransform(vmin=0, vmax=100, height=0)

    def test_default_mapping_endpoints(self):
        t = ValueTransform(vmin=0, vmax=100, height=100)
        assert t.to_row(0) == 99  # bottom
        assert t.to_row(100) == 0  # top

    def test_midpoint(self):
        t = ValueTransform(vmin=0, vmax=100, height=101)
        assert t.to_row(50) == 50

    def test_signal_min_max_normalisation(self):
        """The spec's min/max map the signal onto the 0..100 y ruler."""
        t = ValueTransform(vmin=0, vmax=40, height=100)
        assert t.to_percent(0) == 0.0
        assert t.to_percent(40) == 100.0
        assert t.to_percent(20) == 50.0

    def test_zoom_scales(self):
        t = ValueTransform(vmin=0, vmax=100, zoom=2.0, height=100)
        assert t.to_percent(25) == 50.0  # 25% * 2

    def test_bias_translates(self):
        t = ValueTransform(vmin=0, vmax=100, bias=10.0, height=100)
        assert t.to_percent(0) == 10.0

    def test_rows_clip_to_canvas(self):
        t = ValueTransform(vmin=0, vmax=100, zoom=4.0, height=100)
        assert t.to_row(100) == 0  # 400% clips to the top row
        assert t.to_row(-100) == 99

    def test_visible_predicate(self):
        t = ValueTransform(vmin=0, vmax=100, zoom=2.0, height=100)
        assert t.visible(50)
        assert not t.visible(60)  # 120% off the top

    @given(
        st.floats(min_value=-1e3, max_value=1e3),
        st.floats(min_value=0.25, max_value=8),
        st.floats(min_value=-100, max_value=100),
    )
    def test_row_roundtrip_inverts(self, value, zoom, bias):
        t = ValueTransform(vmin=-1e3, vmax=1e3, zoom=zoom, bias=bias, height=2000)
        row = t.to_row(value)
        if 0 < row < t.height - 1:  # interior rows invert within a pixel
            recovered = t.from_row(row)
            pixel_value = (t.vmax - t.vmin) / (t.height - 1) / zoom
            assert abs(recovered - value) <= pixel_value

    @given(st.floats(min_value=-1e4, max_value=1e4))
    def test_rows_always_in_canvas(self, value):
        t = ValueTransform(vmin=0, vmax=100, height=256)
        assert 0 <= t.to_row(value) <= 255

    @given(
        st.floats(min_value=0, max_value=100),
        st.floats(min_value=0, max_value=100),
    )
    def test_order_preserving(self, a, b):
        t = ValueTransform(vmin=0, vmax=100, height=256)
        if a < b:
            assert t.to_row(a) >= t.to_row(b)  # bigger value, higher (smaller row)
