"""ReplaySource player controls: seek, rate, pause/resume, rewind."""

import numpy as np
import pytest

from repro.capture import CaptureReader, CaptureWriter, ReplaySource
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop

pytestmark = pytest.mark.capture

#: Push instants 100, 200, ... 1000; each batch holds 4 samples stamped
#: shortly before its push.
PUSH_NOWS = [100.0 * k for k in range(1, 11)]


class Sink:
    """Records (clock_now, name, times, values) for every delivered push."""

    def __init__(self, loop):
        self.loop = loop
        self.pushes = []

    def push_samples(self, name, times, values):
        self.pushes.append(
            (self.loop.clock.now(), name, np.array(times), np.array(values))
        )
        return len(times)

    @property
    def delivery_instants(self):
        return [now for now, *_ in self.pushes]

    @property
    def all_times(self):
        return np.concatenate([t for _, _, t, _ in self.pushes])


@pytest.fixture
def store(tmp_path):
    path = tmp_path / "cap"
    with CaptureWriter(path, segment_samples=12) as writer:
        for now in PUSH_NOWS:
            times = np.linspace(now - 30.0, now, 4)
            writer.on_push("sig", times, times * 0.5, now)
    return path


def drive(store, until_ms, **replay_opts):
    loop = MainLoop()
    sink = Sink(loop)
    source = ReplaySource(CaptureReader(store), sink, **replay_opts)
    loop.attach(source)
    loop.run_until(until_ms)
    return loop, sink, source


class TestSchedule:
    def test_rate_1_preserves_instants_and_timestamps(self, store):
        _, sink, source = drive(store, 2_000.0)
        assert source.exhausted
        assert sink.delivery_instants == PUSH_NOWS
        expected = np.concatenate(
            [np.linspace(now - 30.0, now, 4) for now in PUSH_NOWS]
        )
        np.testing.assert_array_equal(sink.all_times, expected)

    def test_deliveries_are_batched_per_push(self, store):
        _, sink, _ = drive(store, 2_000.0)
        assert len(sink.pushes) == len(PUSH_NOWS)
        assert all(t.shape[0] == 4 for _, _, t, _ in sink.pushes)


class TestSeek:
    def test_seek_lands_on_first_tuple_at_or_after_t(self, store):
        reader = CaptureReader(store)
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(reader, sink)
        loop.attach(source)
        source.seek(432.0)  # between batch 4 (tops at 400) and batch 5
        loop.run_until(5_000.0)
        first = sink.all_times[0]
        assert first >= 432.0
        # and it is the *first* such sample: 470.0 opens batch 5.
        assert first == 470.0

    def test_seek_to_exact_indexed_timestamp(self, store):
        # 500.0 is a stored timestamp: seek must land exactly on it.
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        source.seek(500.0)
        loop.run_until(5_000.0)
        assert sink.all_times[0] == 500.0

    def test_seek_mid_block_delivers_the_tail(self, store):
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        source.seek(480.0)  # batch 5 is [470, 480, 490, 500]
        loop.run_until(5_000.0)
        np.testing.assert_array_equal(
            sink.pushes[0][2], np.array([480.0, 490.0, 500.0])
        )

    def test_seek_past_end_is_immediately_exhausted(self, store):
        loop = MainLoop()
        source = ReplaySource(CaptureReader(store), Sink(loop))
        loop.attach(source)
        source.seek(1e9)
        assert source.exhausted


class TestRate:
    @pytest.mark.parametrize("rate", (0.5, 2.0))
    def test_rate_scales_inter_sample_spacing(self, store, rate):
        _, sink, source = drive(store, 10_000.0, rate=rate, start_at=100.0)
        assert source.exhausted
        instants = np.array(sink.delivery_instants)
        # Inter-push spacing scales by 1/rate: 2x halves it, 0.5x doubles.
        np.testing.assert_allclose(np.diff(instants), 100.0 / rate, rtol=1e-12)
        # Delivered timestamps ride the same affine map, so inter-sample
        # spacing inside a batch scales identically.
        for _, _, times, _ in sink.pushes:
            np.testing.assert_allclose(np.diff(times), 10.0 / rate, rtol=1e-12)

    def test_set_rate_mid_replay(self, store):
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        loop.run_until(450.0)  # batches at 100..400 delivered at rate 1
        assert len(sink.pushes) == 4
        source.set_rate(2.0)
        loop.run_until(5_000.0)
        assert source.exhausted
        instants = np.array(sink.delivery_instants)
        np.testing.assert_allclose(np.diff(instants[:4]), 100.0)
        np.testing.assert_allclose(np.diff(instants[4:]), 50.0)


class TestPauseResume:
    def test_pause_stops_delivery_resume_preserves_spacing(self, store):
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        loop.run_until(250.0)
        assert len(sink.pushes) == 2
        source.pause()
        loop.run_until(1_500.0)  # a long paused stretch delivers nothing
        assert len(sink.pushes) == 2
        assert not source.exhausted
        source.resume()
        loop.run_until(3_000.0)
        assert source.exhausted
        # No burst catch-up: the remaining 8 batches keep 100 ms spacing
        # from the resume point.
        resumed = np.array(sink.delivery_instants[2:])
        np.testing.assert_allclose(np.diff(resumed), 100.0)
        assert resumed[0] >= 1_500.0


class TestRewind:
    def test_rewind_after_exhaustion_matches_player_rewind(self, store):
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        loop.run_until(2_000.0)
        assert source.exhausted
        first_pass = sink.all_times.copy()

        source.rewind()
        assert not source.exhausted
        # Exhaustion detached the source from the loop; the second pass
        # is an explicit re-attach, like re-opening the player.
        assert not source.attached
        loop.attach(source)
        loop.run_until(4_000.0)
        assert source.exhausted
        second_pass = sink.all_times[first_pass.shape[0] :]
        np.testing.assert_array_equal(second_pass, first_pass)

        # Same contract as the text player: rewind restarts from the
        # first tuple and a full advance re-delivers everything.
        player = Player.from_capture(str(store))
        once = [(p.time_ms, p.value) for p in player.advance_to(float("inf"))]
        assert player.exhausted
        player.rewind()
        again = [(p.time_ms, p.value) for p in player.advance_to(float("inf"))]
        assert once == again
        assert sorted(t for t, _ in once) == sorted(first_pass.tolist())


class TestExhaustion:
    def test_exhausted_source_detaches_and_run_terminates(self, store):
        """`loop.run()` must terminate once replay finishes — an
        exhausted source may not keep the loop spinning forever."""
        loop = MainLoop()
        sink = Sink(loop)
        source = ReplaySource(CaptureReader(store), sink)
        loop.attach(source)
        loop.run(max_iterations=10_000)
        assert source.exhausted
        assert not source.attached
        assert loop.sources == []
        assert sink.all_times.shape[0] == 4 * len(PUSH_NOWS)

    def test_paused_source_stays_attached(self, store):
        loop = MainLoop()
        source = ReplaySource(CaptureReader(store), Sink(loop))
        loop.attach(source)
        loop.run_until(150.0)
        source.pause()
        loop.run_until(1_000.0)
        assert source.attached and not source.exhausted


class TestValidation:
    def test_rejects_nonpositive_rate(self, store):
        with pytest.raises(ValueError):
            ReplaySource(CaptureReader(store), object(), rate=0.0)
        source = ReplaySource(CaptureReader(store), object())
        with pytest.raises(ValueError):
            source.set_rate(-1.0)
