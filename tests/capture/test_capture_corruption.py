"""Corruption and crash-recovery: the decoder must fail closed.

Every fixture damages a valid segment a different way; the reader must
raise the typed :class:`CaptureFormatError` — never crash with an
unrelated exception, never return wrong columns.  The crash-recovery
tests check the flip side: damage confined to the *tail* segment (what a
killed writer leaves behind) must not take down the completed segments
before it.
"""

import random
import struct
import zlib

import numpy as np
import pytest

from repro.capture import CaptureFormatError, CaptureReader, CaptureWriter
from repro.capture.format import (
    DIR_DTYPE,
    DIR_ENTRY_SIZE,
    HEADER_SIZE,
    TRAILER_SIZE,
    TRAILER_STRUCT,
    unpack_trailer,
)

pytestmark = pytest.mark.capture


@pytest.fixture
def store(tmp_path):
    """One healthy single-segment store plus its segment path."""
    path = tmp_path / "cap"
    with CaptureWriter(path) as writer:
        rng = np.random.default_rng(11)
        now = 0.0
        for k in range(8):
            now += 25.0
            times = np.sort(rng.uniform(now - 40, now, 16))
            writer.on_push(f"sig{k % 3}", times, rng.standard_normal(16), now)
    (segment,) = sorted(path.glob("*.gseg"))
    return path, segment


def read_everything(path, **kwargs):
    """Force full decode: open, walk every block, read every signal."""
    reader = CaptureReader(path, **kwargs)
    for _, block in reader.iter_blocks():
        assert block.times.shape == block.values.shape
    for name in reader.names:
        reader.read_signal(name)
    return reader


def rewrite_directory(segment, mutate):
    """Patch directory entries (and re-seal dir_crc) to forge bogus
    metadata that plain bit-flips could not reach past the CRC."""
    raw = bytearray(segment.read_bytes())
    dir_offset, _ = unpack_trailer(bytes(raw[-TRAILER_SIZE:]))
    dir_end = len(raw) - TRAILER_SIZE
    directory = np.frombuffer(bytes(raw[dir_offset:dir_end]), dtype=DIR_DTYPE).copy()
    mutate(directory)
    dir_bytes = directory.tobytes()
    raw[dir_offset:dir_end] = dir_bytes
    raw[-TRAILER_SIZE:] = TRAILER_STRUCT.pack(
        dir_offset, zlib.crc32(dir_bytes), b"GSCF"
    )
    segment.write_bytes(bytes(raw))


class TestFailClosed:
    def test_truncated_segment(self, store):
        path, segment = store
        raw = segment.read_bytes()
        segment.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CaptureFormatError):
            read_everything(path)

    def test_mid_header_eof(self, store):
        path, segment = store
        segment.write_bytes(segment.read_bytes()[: HEADER_SIZE // 2])
        with pytest.raises(CaptureFormatError, match="truncated"):
            read_everything(path)

    def test_mid_name_table_eof(self, store):
        path, segment = store
        segment.write_bytes(segment.read_bytes()[: HEADER_SIZE + 2])
        with pytest.raises(CaptureFormatError):
            read_everything(path)

    def test_flipped_header_byte(self, store):
        path, segment = store
        raw = bytearray(segment.read_bytes())
        raw[20] ^= 0xFF  # inside t_min: header CRC must catch it
        segment.write_bytes(bytes(raw))
        with pytest.raises(CaptureFormatError, match="header CRC"):
            read_everything(path)

    def test_flipped_block_payload_byte(self, store):
        path, segment = store
        raw = bytearray(segment.read_bytes())
        raw[HEADER_SIZE + 40] ^= 0x01  # a sample byte in the body
        segment.write_bytes(bytes(raw))
        with pytest.raises(CaptureFormatError, match="payload CRC"):
            read_everything(path)

    def test_flipped_stored_crc_byte(self, store):
        """Flipping a stored CRC byte (inside the directory) must fail
        at the directory checksum, before any column is decoded."""
        path, segment = store
        raw = bytearray(segment.read_bytes())
        dir_offset, _ = unpack_trailer(bytes(raw[-TRAILER_SIZE:]))
        crc_field = dir_offset + DIR_DTYPE.fields["crc"][1]
        raw[crc_field] ^= 0x10
        segment.write_bytes(bytes(raw))
        with pytest.raises(CaptureFormatError, match="directory CRC"):
            read_everything(path)

    def test_forged_block_crc_fails_on_block(self, store):
        """A *consistently re-sealed* wrong block CRC gets past the
        directory checksum and must then fail on the block itself."""
        path, segment = store

        def forge(directory):
            directory["crc"][3] ^= 0xDEAD

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="payload CRC"):
            read_everything(path)

    def test_bogus_count(self, store):
        path, segment = store

        def forge(directory):
            directory["count"][2] += 1000

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="bogus count|tile"):
            read_everything(path)

    def test_bogus_name_id(self, store):
        path, segment = store

        def forge(directory):
            directory["name_id"][1] = 999

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="name id"):
            read_everything(path)

    def test_bogus_offset(self, store):
        path, segment = store

        def forge(directory):
            directory["offset"][0] += 8

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="tile"):
            read_everything(path)

    def test_forged_non_finite_push_instant(self, store):
        """A NaN push instant would become a NaN replay deadline and
        wedge the event loop; the reader must reject it at open."""
        path, segment = store

        def forge(directory):
            directory["push_now"][1] = float("nan")

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="non-finite push instant"):
            read_everything(path)

    def test_forged_t_max_fails_on_seek(self, store):
        """A re-sealed directory t_max promising samples the payload
        lacks must raise the typed error at seek, not an assert."""
        path, segment = store
        reader = CaptureReader(path)
        honest_max = reader.end_time_ms
        reader.close()

        def forge(directory):
            directory["t_max"][-1] = honest_max + 1_000.0

        rewrite_directory(segment, forge)
        with pytest.raises(CaptureFormatError, match="promises a sample"):
            CaptureReader(path).seek(honest_max + 500.0)

    def test_flipped_trailer_magic(self, store):
        path, segment = store
        raw = bytearray(segment.read_bytes())
        raw[-1] ^= 0xFF
        segment.write_bytes(bytes(raw))
        with pytest.raises(CaptureFormatError, match="trailer magic|torn"):
            read_everything(path)

    def test_wrong_segment_ordinal(self, store):
        path, segment = store
        segment.rename(path / "00000005.gseg")
        with pytest.raises(CaptureFormatError, match="expected"):
            read_everything(path)

    def test_fuzz_random_byte_flips_never_crash(self, store):
        """Any single flipped byte either reads back clean-equal or
        raises CaptureFormatError — nothing else escapes."""
        path, segment = store
        pristine = segment.read_bytes()
        reference = CaptureReader(path)
        ref_columns = reference.columns()
        rng = random.Random(42)
        for _ in range(60):
            index = rng.randrange(len(pristine))
            raw = bytearray(pristine)
            raw[index] ^= 1 << rng.randrange(8)
            segment.write_bytes(bytes(raw))
            try:
                reader = read_everything(path)
            except CaptureFormatError:
                continue  # failed closed, as required
            # Survivable flips may only touch redundant metadata —
            # the decoded columns must still be byte-identical.
            got = reader.columns()
            for a, b in zip(ref_columns, got):
                np.testing.assert_array_equal(a, b)
        segment.write_bytes(pristine)


class TestCrashRecovery:
    def multi_segment_store(self, tmp_path, segments=4):
        path = tmp_path / "cap"
        writer = CaptureWriter(path, segment_samples=16)
        now = 0.0
        for k in range(segments * 2):  # 2 blocks of 8 per segment
            now += 10.0
            times = np.linspace(now - 5, now, 8)
            writer.on_push("sig", times, times * 2, now)
        writer.close()
        assert writer.segments_written == segments
        return path

    def test_torn_tail_segment_recoverable(self, tmp_path):
        path = self.multi_segment_store(tmp_path)
        files = sorted(path.glob("*.gseg"))
        tail = files[-1]
        tail_bytes = tail.read_bytes()
        # Simulate a writer killed mid-flush: the tail is half-written.
        tail.write_bytes(tail_bytes[: len(tail_bytes) // 3])

        # Strict mode fails closed ...
        with pytest.raises(CaptureFormatError):
            CaptureReader(path)
        # ... recovery mode reads every completed segment.
        reader = CaptureReader(path, recover_tail=True)
        assert reader.skipped_tail == tail.name
        assert len(reader.segments) == len(files) - 1
        times, values = reader.read_signal("sig")
        assert times.shape[0] == (len(files) - 1) * 16
        np.testing.assert_array_equal(values, times * 2)

    def test_recovery_never_hides_mid_store_damage(self, tmp_path):
        path = self.multi_segment_store(tmp_path)
        files = sorted(path.glob("*.gseg"))
        middle = files[1]
        middle.write_bytes(middle.read_bytes()[:40])
        with pytest.raises(CaptureFormatError):
            CaptureReader(path, recover_tail=True)

    def test_torn_tail_catch_up_never_replays_partial_blocks(self, tmp_path):
        """Catch-up over a torn store delivers every completed block's
        samples exactly once and the torn tail's samples zero times —
        and a second catch-up pass (a restart of the restart) replays
        the identical set, so a partial block can never sneak in twice.
        """
        from repro.capture import catch_up
        from repro.eventloop.loop import MainLoop

        path = self.multi_segment_store(tmp_path)
        files = sorted(path.glob("*.gseg"))
        tail = files[-1]
        tail_bytes = tail.read_bytes()
        tail.write_bytes(tail_bytes[: len(tail_bytes) // 3])

        class Recorder:
            def __init__(self):
                self.times = []

            def push_samples(self, name, times, values):
                self.times.append(np.array(times, copy=True))
                return len(times)

        def run_catch_up():
            loop = MainLoop()
            target = Recorder()
            reader = CaptureReader(path, recover_tail=True)
            assert reader.skipped_tail == tail.name
            catch_up(reader, target, loop, through_ms=1e9)
            return np.concatenate(target.times)

        first = run_catch_up()
        # Exactly the completed segments' samples, each exactly once.
        assert first.shape[0] == (len(files) - 1) * 16
        assert np.unique(first).shape[0] == first.shape[0]
        # Second pass: byte-identical, still nothing from the torn tail.
        np.testing.assert_array_equal(run_catch_up(), first)

    def test_unflushed_pending_blocks_are_lost_not_corrupting(self, tmp_path):
        path = tmp_path / "cap"
        writer = CaptureWriter(path, segment_samples=16)
        now = 0.0
        for k in range(3):  # flushes one 16-sample segment, leaves 8 pending
            now += 10.0
            writer.on_push("sig", np.linspace(now - 5, now, 8), np.ones(8), now)
        # No close(): the writer dies with blocks pending.  Whatever hit
        # the disk is a complete, valid store.
        reader = CaptureReader(path)
        assert reader.sample_count == 16
