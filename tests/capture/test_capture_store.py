"""Writer/reader round-trip, metadata, taps and text conversion."""

import io

import numpy as np
import pytest

from repro.capture import (
    CaptureFormatError,
    CaptureReader,
    CaptureWriter,
    Position,
    ReplaySource,
    capture_sharded,
    export_text,
    import_text,
)
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop
from repro.net.shard import ShardedScopeManager

pytestmark = pytest.mark.capture


def write_blocks(path, blocks, segment_samples=1 << 16):
    with CaptureWriter(path, segment_samples=segment_samples) as writer:
        for name, times, values, now in blocks:
            writer.on_push(name, times, values, now)
    return writer


class TestWriter:
    def test_roundtrip_bitwise(self, tmp_path):
        rng = np.random.default_rng(7)
        blocks = []
        now = 0.0
        for k in range(20):
            now += float(rng.uniform(1, 50))
            times = np.sort(rng.uniform(now - 100, now, size=rng.integers(1, 40)))
            blocks.append((f"sig{k % 3}", times, rng.standard_normal(times.size), now))
        write_blocks(tmp_path / "cap", blocks, segment_samples=64)

        reader = CaptureReader(tmp_path / "cap")
        assert reader.sample_count == sum(len(b[1]) for b in blocks)
        assert reader.block_count == len(blocks)
        got = list(reader.iter_blocks())
        assert len(got) == len(blocks)
        for (name, times, values, now), (_, block) in zip(blocks, got):
            assert block.name == name
            assert block.push_now == now
            np.testing.assert_array_equal(block.times, times)
            np.testing.assert_array_equal(block.values, values)

    def test_segments_roll_at_threshold(self, tmp_path):
        blocks = [
            ("s", np.arange(10, dtype=float) + 100 * k, np.ones(10), 100.0 * k + 10)
            for k in range(1, 11)
        ]
        writer = write_blocks(tmp_path / "cap", blocks, segment_samples=25)
        assert writer.segments_written == 4  # 30+30+30+10
        reader = CaptureReader(tmp_path / "cap")
        assert len(reader.segments) == 4
        assert reader.sample_count == 100

    def test_blocks_never_split_across_segments(self, tmp_path):
        big = np.arange(100, dtype=float)
        write_blocks(
            tmp_path / "cap", [("s", big, big, 200.0)], segment_samples=10
        )
        reader = CaptureReader(tmp_path / "cap")
        assert reader.block_count == 1
        assert len(reader.segments[0].block(0)) == 100

    def test_copies_producer_buffers(self, tmp_path):
        buf = np.arange(5, dtype=float)
        with CaptureWriter(tmp_path / "cap") as writer:
            writer.on_push("s", buf, buf, 10.0)
            buf[:] = -1  # producer reuses its batch buffer
        block = CaptureReader(tmp_path / "cap").segments[0].block(0)
        np.testing.assert_array_equal(block.times, np.arange(5, dtype=float))

    def test_empty_batches_write_nothing(self, tmp_path):
        with CaptureWriter(tmp_path / "cap") as writer:
            writer.on_push("s", np.empty(0), np.empty(0), 5.0)
        assert writer.samples_written == 0
        assert CaptureReader(tmp_path / "cap").sample_count == 0

    def test_rejects_non_finite_push_instants(self, tmp_path):
        # A NaN deadline would hang the replay event loop forever.
        with CaptureWriter(tmp_path / "cap") as writer:
            for bad in (float("nan"), float("inf")):
                with pytest.raises(ValueError, match="finite"):
                    writer.on_push("s", (1.0,), (1.0,), bad)

    def test_record_api_tolerates_nan_timestamps(self, tmp_path):
        # The text format can carry `nan` times; the derived push
        # schedule must stay finite and monotone regardless.
        import_text("10 1 a\nnan 5 a\n30 2 b\n40 3 b\n", tmp_path / "cap")
        reader = CaptureReader(tmp_path / "cap")
        assert reader.sample_count == 4
        times, values = reader.read_signal("a")
        assert times[0] == 10.0 and np.isnan(times[1]) and values[1] == 5.0
        # ... and the store replays without wedging the loop.
        loop = MainLoop()

        class Count:
            n = 0

            def push_samples(self, name, t, v):
                Count.n += len(t)
                return len(t)

        src = ReplaySource(reader, Count())
        loop.attach(src)
        loop.run(max_iterations=1_000)
        assert src.exhausted and Count.n == 4

    def test_rejects_backwards_push_instants(self, tmp_path):
        with CaptureWriter(tmp_path / "cap") as writer:
            writer.on_push("s", (1.0,), (1.0,), 100.0)
            with pytest.raises(ValueError, match="monotonic"):
                writer.on_push("s", (2.0,), (2.0,), 50.0)

    def test_rejects_existing_capture(self, tmp_path):
        write_blocks(tmp_path / "cap", [("s", (1.0,), (2.0,), 3.0)])
        with pytest.raises(ValueError, match="append-once"):
            CaptureWriter(tmp_path / "cap")

    def test_rejects_mismatched_columns(self, tmp_path):
        with CaptureWriter(tmp_path / "cap") as writer:
            with pytest.raises(ValueError, match="equal-length"):
                writer.on_push("s", (1.0, 2.0), (1.0,), 3.0)

    def test_closed_writer_rejects_pushes(self, tmp_path):
        writer = CaptureWriter(tmp_path / "cap")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.on_push("s", (1.0,), (1.0,), 2.0)

    def test_recorder_compatible_api(self, tmp_path):
        with CaptureWriter(tmp_path / "cap") as writer:
            writer.record(10.0, 1.5, "a")
            writer.record_many(
                [20.0, 30.0, 40.0], [1.0, 2.0, 3.0], ["b", "b", "a"]
            )
        reader = CaptureReader(tmp_path / "cap")
        assert reader.sample_count == 4
        # consecutive same-name runs share one block
        assert reader.block_count == 3
        times, values = reader.read_signal("b")
        np.testing.assert_array_equal(times, [20.0, 30.0])
        np.testing.assert_array_equal(values, [1.0, 2.0])


class TestReaderMetadata:
    def test_names_in_stream_order(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [
                ("zeta", (1.0,), (1.0,), 1.0),
                ("alpha", (2.0,), (2.0,), 2.0),
                ("zeta", (3.0,), (3.0,), 3.0),
            ],
        )
        assert CaptureReader(tmp_path / "cap").names == ["zeta", "alpha"]

    def test_time_range_and_duration(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [("s", (50.0, 80.0), (0.0, 0.0), 90.0), ("s", (70.0, 400.0), (0.0, 0.0), 410.0)],
            segment_samples=2,
        )
        reader = CaptureReader(tmp_path / "cap")
        assert reader.start_time_ms == 50.0
        assert reader.end_time_ms == 400.0
        assert reader.duration_ms == 350.0

    def test_empty_capture(self, tmp_path):
        CaptureWriter(tmp_path / "cap").close()
        reader = CaptureReader(tmp_path / "cap")
        assert reader.sample_count == 0
        assert reader.names == []
        assert reader.duration_ms == 0.0
        assert reader.seek(0.0) == reader.end_position()

    def test_missing_directory(self, tmp_path):
        with pytest.raises(CaptureFormatError, match="no capture directory"):
            CaptureReader(tmp_path / "nope")


class TestSeek:
    def blocks(self):
        # Jittered: block times overlap backwards, as live captures do.
        return [
            ("a", np.array([10.0, 20.0, 30.0]), np.zeros(3), 35.0),
            ("b", np.array([25.0, 28.0]), np.zeros(2), 40.0),
            ("a", np.array([50.0, 60.0]), np.zeros(2), 65.0),
            ("b", np.array([55.0, 90.0]), np.zeros(2), 95.0),
        ]

    @pytest.mark.parametrize("segment_samples", (2, 1 << 16))
    def test_first_tuple_at_or_after(self, tmp_path, segment_samples):
        write_blocks(tmp_path / "cap", self.blocks(), segment_samples)
        reader = CaptureReader(tmp_path / "cap")
        for t, expected in [
            (0.0, 10.0),  # before everything
            (10.0, 10.0),  # exact hit on an indexed timestamp
            (21.0, 30.0),  # inside block 0
            (26.0, 30.0),  # stream order: block 0's 30 precedes block 1's 28
        ]:
            pos = reader.seek(t)
            _, first = next(iter(reader.iter_blocks(pos)))
            assert first.times[0] == expected, (t, pos)

    def test_seek_lands_in_stream_order(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks())
        reader = CaptureReader(tmp_path / "cap")
        # t=26: stream-order first sample >= 26 is 30.0 (block 0, offset 2),
        # not block 1's 28.0.
        pos = reader.seek(26.0)
        assert pos == Position(segment=0, block=0, offset=2)
        # t=31: blocks 0 and 1 top out below t; the cum-max index skips
        # straight to the first block holding a sample >= t.
        pos = reader.seek(31.0)
        _, first = next(iter(reader.iter_blocks(pos)))
        assert first.times[0] == 50.0

    def test_seek_past_end(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks())
        reader = CaptureReader(tmp_path / "cap")
        assert reader.seek(1e9) == reader.end_position()
        assert list(reader.iter_blocks(reader.seek(1e9))) == []

    def test_nan_timestamps_do_not_poison_the_index(self, tmp_path):
        # The buffer keeps NaN timestamps on the accept side, so a
        # tapped live run can legitimately record one.
        write_blocks(
            tmp_path / "cap",
            [
                ("s", np.array([1.0, np.nan]), np.array([1.0, 2.0]), 5.0),
                ("s", np.array([np.nan, np.nan]), np.array([3.0, 4.0]), 6.0),
                ("s", np.array([5.0, 6.0]), np.array([5.0, 6.0]), 7.0),
            ],
        )
        reader = CaptureReader(tmp_path / "cap")
        pos = reader.seek(5.0)
        _, first = next(iter(reader.iter_blocks(pos)))
        assert first.times[0] == 5.0
        # NaN samples still replay through verbatim.
        times, _ = reader.read_signal("s")
        assert np.isnan(times[1]) and np.isnan(times[2]) and np.isnan(times[3])

    def test_seek_respects_unsorted_blocks(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [("s", np.array([30.0, 10.0, 40.0]), np.zeros(3), 50.0)],
        )
        reader = CaptureReader(tmp_path / "cap")
        pos = reader.seek(20.0)
        # first sample >= 20 in stream order is the leading 30.0
        assert pos.offset == 0


class TestTaps:
    def test_manager_tap_sees_offered_stream(self, tmp_path):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("s", period_ms=50, delay_ms=10.0)
        scope.signal_new(buffer_signal("sig"))
        with CaptureWriter(tmp_path / "cap") as writer:
            manager.add_tap(writer)
            loop.clock.advance(100)
            # one fresh, one late (dropped) — the tap records both
            accepted = manager.push_samples("sig", [95.0, 10.0], [1.0, 2.0])
            manager.push_sample("sig", 99.0, 3.0)
            manager.remove_tap(writer)
            manager.push_samples("sig", [100.0], [4.0])  # not captured
        assert accepted == 1
        reader = CaptureReader(tmp_path / "cap")
        times, values = reader.read_signal("sig")
        np.testing.assert_array_equal(times, [95.0, 10.0, 99.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])

    def test_scope_tap(self, tmp_path):
        loop = MainLoop()
        scope = ScopeManager(loop).scope_new("s", delay_ms=1e6)
        scope.signal_new(buffer_signal("sig"))
        with CaptureWriter(tmp_path / "cap") as writer:
            scope.add_tap(writer)
            scope.push_samples("sig", np.array([1.0, 2.0]), np.array([5.0, 6.0]))
            scope.push_sample("sig", 3.0, 7.0)
            scope.remove_tap(writer)
        reader = CaptureReader(tmp_path / "cap")
        assert reader.sample_count == 3

    def test_sharded_tap_rejects_per_shard_loops(self, tmp_path):
        # Independent shard clocks cannot interleave into one monotonic
        # stream; the per-shard capture_sharded layout covers that case.
        sharded = ShardedScopeManager(shards=2, loops=[MainLoop(), MainLoop()])
        with pytest.raises(ValueError, match="capture_sharded"):
            sharded.add_tap(lambda *a: None)
        writers = capture_sharded(sharded, tmp_path / "cap")
        assert len(writers) == 2

    def test_sharded_capture_one_stream_per_shard(self, tmp_path):
        loop = MainLoop()
        sharded = ShardedScopeManager(shards=3, loop=loop)
        names = [f"sig{i}" for i in range(9)]
        for name in names:
            sharded.scope_new(f"scope-{name}", shard=sharded.shard_of(name), delay_ms=1e6)
            sharded.scope(f"scope-{name}").signal_new(buffer_signal(name))
        writers = capture_sharded(sharded, tmp_path / "cap", segment_samples=8)
        for k, name in enumerate(names):
            sharded.push_samples(name, [float(k)], [float(k) * 2])
        for writer in writers:
            writer.close()
        total = 0
        for index in range(3):
            reader = CaptureReader(tmp_path / "cap" / f"shard-{index:02d}")
            for captured in reader.names:
                assert sharded.shard_of(captured) == index
            total += reader.sample_count
        assert total == len(names)


class TestTextConversion:
    def test_export_import_roundtrip_exact(self, tmp_path):
        rng = np.random.default_rng(3)
        blocks = []
        now = 0.0
        for k in range(6):
            now += 10.0
            times = np.sort(rng.uniform(now - 30, now, 5))
            blocks.append((f"s{k % 2}", times, rng.standard_normal(5) * 1e6, now))
        write_blocks(tmp_path / "a", blocks)

        sink = io.StringIO()
        n = export_text(CaptureReader(tmp_path / "a"), sink)
        assert n == 30
        import_text(sink.getvalue(), tmp_path / "b")

        ta, va, ia = CaptureReader(tmp_path / "a").columns()
        tb, vb, _ = CaptureReader(tmp_path / "b").columns()
        order = np.argsort(ta, kind="stable")
        np.testing.assert_array_equal(ta[order], tb)
        np.testing.assert_array_equal(va[order], vb)

    def test_player_from_capture_matches_export(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [
                ("a", np.array([10.0, 30.0]), np.array([1.0, -0.0]), 35.0),
                ("b", np.array([20.0]), np.array([1e300]), 40.0),
            ],
        )
        sink = io.StringIO()
        export_text(CaptureReader(tmp_path / "cap"), sink)
        via_text = Player(io.StringIO(sink.getvalue()))
        direct = Player.from_capture(str(tmp_path / "cap"))
        a = [(t.time_ms, t.value, t.name) for t in via_text.advance_to(float("inf"))]
        b = [(t.time_ms, t.value, t.name) for t in direct.advance_to(float("inf"))]
        assert a == b
        assert [round(t) for t, _, _ in b] == [10, 20, 30]


class TestColumnsFor:
    def blocks(self):
        return [
            ("a", np.array([1.0, 2.0]), np.array([10.0, 20.0]), 3.0),
            ("b", np.array([1.5]), np.array([-1.0]), 3.5),
            ("a", np.array([4.0, 5.0, 6.0]), np.array([30.0, 40.0, 50.0]), 7.0),
            ("c", np.array([5.5]), np.array([9.0]), 8.0),
            ("b", np.array([6.5, 7.5]), np.array([-2.0, -3.0]), 9.0),
        ]

    def test_multi_signal_single_pass(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks(), segment_samples=3)
        reader = CaptureReader(tmp_path / "cap")
        columns = reader.columns_for(["a", "b"])
        assert columns["a"][0].tolist() == [1.0, 2.0, 4.0, 5.0, 6.0]
        assert columns["a"][1].tolist() == [10.0, 20.0, 30.0, 40.0, 50.0]
        assert columns["b"][0].tolist() == [1.5, 6.5, 7.5]
        assert columns["b"][1].tolist() == [-1.0, -2.0, -3.0]

    def test_matches_read_signal(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks(), segment_samples=2)
        reader = CaptureReader(tmp_path / "cap")
        for name in ("a", "b", "c"):
            times, values = reader.read_signal(name)
            ctimes, cvalues = reader.columns_for([name])[name]
            assert times.tobytes() == ctimes.tobytes()
            assert values.tobytes() == cvalues.tobytes()

    def test_absent_name_yields_empty_columns(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks())
        reader = CaptureReader(tmp_path / "cap")
        times, values = reader.columns_for(["nope"])["nope"]
        assert times.shape[0] == 0 and values.shape[0] == 0
        times, values = reader.read_signal("nope")
        assert times.shape[0] == 0

    def test_duplicate_request_names_collapse(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks())
        reader = CaptureReader(tmp_path / "cap")
        columns = reader.columns_for(["a", "a", "b"])
        assert set(columns) == {"a", "b"}
        assert columns["a"][0].shape[0] == 5

    def test_signal_sample_counts(self, tmp_path):
        write_blocks(tmp_path / "cap", self.blocks(), segment_samples=2)
        reader = CaptureReader(tmp_path / "cap")
        assert reader.signal_sample_counts() == {"a": 5, "b": 3, "c": 1}


class TestIterBlocksFilter:
    def test_names_filter_skips_other_signals(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [
                ("x", np.array([1.0]), np.array([1.0]), 2.0),
                ("y", np.array([2.0]), np.array([2.0]), 3.0),
                ("x", np.array([3.0]), np.array([3.0]), 4.0),
            ],
            segment_samples=1,
        )
        reader = CaptureReader(tmp_path / "cap")
        names = [block.name for _, block in reader.iter_blocks(names=["x"])]
        assert names == ["x", "x"]

    def test_filtered_blocks_skip_payload_crc(self, tmp_path):
        """Blocks of unrequested signals are skipped before decoding."""
        write_blocks(
            tmp_path / "cap",
            [
                ("keep", np.array([1.0]), np.array([1.0]), 2.0),
                ("skip", np.array([2.0]), np.array([2.0]), 3.0),
            ],
        )
        reader = CaptureReader(tmp_path / "cap")
        segment = reader.segments[0]
        list(reader.iter_blocks(names=["keep"]))
        skip_id = segment.names.index("skip")
        skip_blocks = np.flatnonzero(segment.directory["name_id"] == skip_id)
        assert not segment._verified[skip_blocks].any()

    def test_no_filter_yields_everything(self, tmp_path):
        write_blocks(
            tmp_path / "cap",
            [
                ("x", np.array([1.0]), np.array([1.0]), 2.0),
                ("y", np.array([2.0]), np.array([2.0]), 3.0),
            ],
        )
        reader = CaptureReader(tmp_path / "cap")
        assert len(list(reader.iter_blocks())) == 2
