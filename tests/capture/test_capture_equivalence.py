"""Randomized record↔replay equivalence: capture must be invisible.

Each seed drives a randomized multi-signal schedule — batch and scalar
pushes, timestamps jittered around the late-drop threshold — through a
live polling manager with a :class:`CaptureWriter` tap attached.  A
fresh, identically configured manager is then re-driven from the store
by a :class:`ReplaySource` at rate 1.  The replayed run must reproduce
the live run **byte for byte**: every accept/late-drop decision, every
buffer counter, every trace column (raw *and* low-pass filtered), and
the per-signal aggregate values.  Finally the store exports to the text
tuple format and a :class:`Player` must deliver the identical sample
stream — the §3.3 compatibility path over the same data.
"""

import io
import random

import numpy as np
import pytest

from repro.capture import CaptureReader, CaptureWriter, ReplaySource, export_text
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.core.tuples import Player
from repro.eventloop.loop import MainLoop

pytestmark = pytest.mark.capture

SIGNALS = ("alpha", "beta", "gamma")
FILTERS = {"alpha": 0.0, "beta": 0.25, "gamma": 0.0}
RUN_MS = 3_000.0
TICK_MS = 25.0
SEEDS = range(10)


def build_rig(delay_ms):
    """One manager + polling scope carrying the three test signals."""
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("rig", period_ms=50, delay_ms=delay_ms)
    for name in SIGNALS:
        scope.signal_new(buffer_signal(name, filter=FILTERS[name]))
    scope.set_polling_mode(50)
    scope.start_polling()
    return loop, manager, scope


def snapshot(scope):
    """Everything the live run decided, as exact arrays and counters."""
    stats = scope.buffer.stats
    out = {
        "pushed": stats.pushed,
        "dropped_late": stats.dropped_late,
        "popped": stats.popped,
        "polls": scope.polls,
    }
    traces = {}
    aggregates = {}
    for name in SIGNALS:
        channel = scope.channel(name)
        traces[name] = (
            channel.times_array().copy(),
            channel.raw_array().copy(),
            channel.values_array().copy(),  # filtered: replay must re-filter identically
        )
        out[f"buffered_samples[{name}]"] = channel.buffered_samples
        values = channel.values_array()
        aggregates[name] = (
            values.shape[0],
            float(values.sum()) if values.shape[0] else 0.0,
            float(values.min()) if values.shape[0] else 0.0,
            float(values.max()) if values.shape[0] else 0.0,
        )
    return out, traces, aggregates


def live_run(seed, capture_dir):
    """Drive a random schedule live, with a capture tap attached."""
    rng = random.Random(seed)
    delay_ms = rng.choice((40.0, 100.0, 250.0))
    loop, manager, scope = build_rig(delay_ms)
    writer = CaptureWriter(capture_dir, segment_samples=rng.choice((64, 256, 4096)))
    manager.add_tap(writer)

    def feed(_lost) -> bool:
        now = loop.clock.now()
        for name in SIGNALS:
            n = rng.randrange(0, 5)
            if n == 0:
                continue
            # Jitter around the late threshold: some samples are fresh,
            # some exactly on it, some already expired.
            times = sorted(now - rng.uniform(0.0, 2.0 * delay_ms) for _ in range(n))
            values = [rng.uniform(-100.0, 100.0) for _ in range(n)]
            if rng.random() < 0.3:
                for t, v in zip(times, values):
                    manager.push_sample(name, t, v)
            else:
                manager.push_samples(
                    name, np.asarray(times), np.asarray(values)
                )
        return True

    loop.timeout_add(TICK_MS, feed)
    loop.run_until(RUN_MS)
    writer.close()
    return delay_ms, snapshot(scope)


def replay_run(capture_dir, delay_ms):
    """Re-drive a fresh rig from the store at rate 1 (exact timeline)."""
    loop, manager, scope = build_rig(delay_ms)
    source = ReplaySource(CaptureReader(capture_dir), manager)
    loop.attach(source)
    loop.run_until(RUN_MS)
    assert source.exhausted
    return snapshot(scope)


@pytest.mark.parametrize("seed", SEEDS)
def test_replay_reproduces_live_run_bit_for_bit(seed, tmp_path):
    delay_ms, (live, live_traces, live_agg) = live_run(seed, tmp_path / "cap")
    replayed, replay_traces, replay_agg = replay_run(tmp_path / "cap", delay_ms)

    for key in live:
        assert replayed[key] == live[key], (
            f"seed {seed}: {key} diverged: replay {replayed[key]} vs live {live[key]}"
        )
    # Something interesting must actually have happened.
    assert live["pushed"] > 100

    for name in SIGNALS:
        for live_col, replay_col, label in zip(
            live_traces[name], replay_traces[name], ("times", "raw", "filtered")
        ):
            # Byte-identical floats, not approximately equal: the
            # accept decision surface (time + delay <= now) and the
            # one-pole filter recursion are exact-float territory.
            np.testing.assert_array_equal(
                replay_col, live_col, err_msg=f"seed {seed}: {name} {label}"
            )
        assert replay_agg[name] == live_agg[name]


@pytest.mark.parametrize("seed", (0, 3))
def test_schedules_exercise_the_late_drop_edge(seed, tmp_path):
    """Guard the guard: without real drops the equivalence above would
    prove nothing about the decision surface."""
    _, (live, _, _) = live_run(seed, tmp_path / "cap")
    assert live["dropped_late"] > 0
    assert live["pushed"] > live["dropped_late"]


@pytest.mark.parametrize("seed", (1, 4))
def test_text_player_delivers_the_same_samples(seed, tmp_path):
    """The §3.3 text path over the same store: export → Player must
    deliver exactly the captured samples (playback mode accepts all)."""
    live_run(seed, tmp_path / "cap")
    reader = CaptureReader(tmp_path / "cap")

    sink = io.StringIO()
    export_text(reader, sink)
    player = Player(io.StringIO(sink.getvalue()))
    assert len(player) == reader.sample_count

    times, values, ids = reader.columns()
    names = reader.names
    order = np.argsort(times, kind="stable")
    delivered = player.advance_to(float("inf"))
    assert [(p.time_ms, p.value, p.name) for p in delivered] == [
        (t, v, names[i])
        for t, v, i in zip(
            times[order].tolist(), values[order].tolist(), ids[order].tolist()
        )
    ]

    # Player.from_capture is the same adapter without the text detour.
    direct = Player.from_capture(reader)
    assert [(p.time_ms, p.value, p.name) for p in direct.advance_to(float("inf"))] == [
        (p.time_ms, p.value, p.name) for p in delivered
    ]


def test_sharded_capture_replays_identically(tmp_path):
    """Sharded fan-in: per-shard streams replayed into a fresh sharded
    manager reproduce every shard's traces and drop decisions."""
    from repro.capture import capture_sharded
    from repro.net.shard import ShardedScopeManager

    def build(capture_root=None):
        loop = MainLoop()
        sharded = ShardedScopeManager(shards=3, loop=loop)
        for name in SIGNALS:
            scope = sharded.scope_new(
                f"scope-{name}", shard=sharded.shard_of(name),
                period_ms=50, delay_ms=60.0,
            )
            scope.signal_new(buffer_signal(name))
        for manager in sharded.managers:
            manager.start_all()
        writers = (
            capture_sharded(sharded, capture_root, segment_samples=64)
            if capture_root
            else None
        )
        return loop, sharded, writers

    rng = random.Random(99)
    loop, sharded, writers = build(tmp_path / "cap")

    def feed(_lost) -> bool:
        now = loop.clock.now()
        for name in SIGNALS:
            times = sorted(now - rng.uniform(0.0, 120.0) for _ in range(3))
            sharded.push_samples(name, times, [rng.uniform(0, 10) for _ in range(3)])
        return True

    loop.timeout_add(TICK_MS, feed)
    loop.run_until(RUN_MS)
    for writer in writers:
        writer.close()
    live_totals = sharded.totals()
    live_traces = {
        name: sharded.scope(f"scope-{name}").channel(name).times_array().copy()
        for name in SIGNALS
    }
    assert live_totals["dropped_late"] > 0

    loop2, sharded2, _ = build()
    for index in range(3):
        store = tmp_path / "cap" / f"shard-{index:02d}"
        reader = CaptureReader(store)
        if reader.sample_count:
            loop2.attach(ReplaySource(reader, sharded2))
    loop2.run_until(RUN_MS)
    replay_totals = sharded2.totals()
    assert replay_totals == live_totals
    for name in SIGNALS:
        np.testing.assert_array_equal(
            sharded2.scope(f"scope-{name}").channel(name).times_array(),
            live_traces[name],
        )
