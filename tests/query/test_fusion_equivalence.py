"""Fusion equivalence: fused plans byte-match the unfused numpy oracle.

The fusion pass and the compiled kernels are *performance* features
with one correctness contract: **they never change output bytes**.
Per seed, a randomized fusable chain (scalar maps, abs/negate, clip,
comparisons, ewma, rate, delta — the stateful ones carry state across
batches) is executed four ways:

1. unfused per-operator numpy (``fuse=False``) — the oracle,
2. fused, whatever native backend this machine resolved,
3. fused, fed incrementally in jittered batch splits (state carry),
4. fused with the backend forced to numpy (``REPRO_NATIVE=0``) — the
   interpretation a toolchain-less install runs.

All four must agree to the byte on times and values.  The structural
half of the contract is tested directly: join / window / resample /
edges are barriers no fused node may contain, and shared or published
intermediates end their chain.
"""

import numpy as np
import pytest

from repro.core import native
from repro.query import Runtime, compile_query, execute
from repro.query import kernels

pytestmark = [pytest.mark.query, pytest.mark.fusion]

SEEDS = range(10)

#: Chain steps the generator may stack (query-text templates).
_STEPS = (
    "abs({x})",
    "-({x})",
    "({x}) * {c}",
    "{c} - ({x})",
    "({x}) + {c}",
    "({x}) / {c}",
    "min({x}, {c})",
    "max({x}, {c})",
    "({x}) > {c}",
    "({x}) <= {c}",
    "clip({x}, {lo}, {hi})",
    "ewma({x}, {a})",
    "rate({x})",
    "delta({x})",
)


def random_chain(rng) -> str:
    """A random 1-6 step fusable chain over source signal ``x``."""
    expr = "x"
    for _ in range(int(rng.integers(1, 7))):
        template = _STEPS[int(rng.integers(len(_STEPS)))]
        lo = float(np.round(rng.uniform(-2.0, 0.0), 3))
        expr = template.format(
            x=expr,
            c=float(np.round(rng.uniform(-3.0, 3.0), 3)) or 1.0,
            lo=lo,
            hi=float(np.round(lo + rng.uniform(0.1, 3.0), 3)),
            a=float(np.round(rng.uniform(0.0, 1.0), 3)),
        )
    return expr


def make_stream(rng, n):
    """Strictly monotone times, finite values (ewma rejects non-finite)."""
    times = np.cumsum(rng.uniform(0.05, 3.0, n)) + rng.uniform(0, 2.0)
    values = rng.standard_normal(n)
    return times, values


def run_batch(plan, times, values):
    out = execute({"x": (times, values)}, plan)
    (result,) = out.values()
    return result


def run_split(plan, times, values, rng):
    """Feed the same stream in jittered batch sizes, carrying state."""
    runtime = Runtime(plan)
    collected_t, collected_v = [], []

    (name,) = plan.outputs
    runtime.add_sink(
        name, lambda t, v: (collected_t.append(t), collected_v.append(v))
    )
    cursor = 0
    n = times.shape[0]
    while cursor < n:
        step = int(rng.integers(1, 40))
        runtime.feed("x", times[cursor : cursor + step], values[cursor : cursor + step])
        cursor += step
    runtime.finish()
    if not collected_t:
        empty = np.empty(0, dtype=np.float64)
        return empty, empty.copy()
    return np.concatenate(collected_t), np.concatenate(collected_v)


def assert_bytes_equal(got, want, label):
    assert got[0].tobytes() == want[0].tobytes(), f"{label}: times differ"
    assert got[1].tobytes() == want[1].tobytes(), f"{label}: values differ"


@pytest.fixture
def numpy_backend(monkeypatch):
    """Force the pure-numpy backend for the duration of one test."""
    monkeypatch.setenv("REPRO_NATIVE", "0")
    native.reset()
    kernels.reset_cache()
    yield
    native.reset()
    kernels.reset_cache()


@pytest.fixture
def no_compiler(monkeypatch):
    """Simulate a machine with no C toolchain (default REPRO_NATIVE)."""
    monkeypatch.delenv("REPRO_NATIVE", raising=False)
    native.reset()
    kernels.reset_cache()
    monkeypatch.setattr(native, "_compiler", None)
    monkeypatch.setattr(native, "_compiler_probed", True)
    yield
    native.reset()
    kernels.reset_cache()


# ----------------------------------------------------------------------
# Randomized byte-identity across backends and batch splits
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fused_matches_unfused_oracle(seed):
    rng = np.random.default_rng(seed)
    for _ in range(4):
        query = random_chain(rng)
        times, values = make_stream(rng, int(rng.integers(50, 400)))
        oracle = run_batch(compile_query(query, fuse=False), times, values)
        fused_plan = compile_query(query, fuse=True)
        assert any(n.op == "fused" for n in fused_plan.nodes), query
        assert_bytes_equal(
            run_batch(fused_plan, times, values), oracle, f"fused: {query}"
        )
        assert_bytes_equal(
            run_split(fused_plan, times, values, rng),
            oracle,
            f"fused split: {query}",
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_fused_numpy_interpretation_matches_oracle(seed, numpy_backend):
    # REPRO_NATIVE=0: compile_query defaults to fuse=None -> no fusion;
    # forcing fuse=True must still run the chain through the original
    # operator wiring with identical bytes.
    rng = np.random.default_rng(1000 + seed)
    query = random_chain(rng)
    times, values = make_stream(rng, int(rng.integers(50, 400)))
    oracle = run_batch(compile_query(query, fuse=False), times, values)
    fused_plan = compile_query(query, fuse=True)
    assert kernels.get_fused(fused_plan.nodes[-1].params[0]) is None
    assert_bytes_equal(
        run_batch(fused_plan, times, values), oracle, f"numpy fused: {query}"
    )
    assert_bytes_equal(
        run_split(fused_plan, times, values, rng),
        oracle,
        f"numpy fused split: {query}",
    )


def test_default_compile_is_unfused_under_repro_native_0(numpy_backend):
    plan = compile_query("clip(2*x + 1, -1, 1)")
    assert all(n.op != "fused" for n in plan.nodes)


def test_toolchainless_machine_still_fuses_with_numpy_kernels(no_compiler):
    # No compiler: fusion stays on (it still saves per-op dispatch) but
    # every kernel resolves to the numpy interpretation; bytes match.
    assert native.mode() == "numpy"
    rng = np.random.default_rng(77)
    query = "clip(ewma(2*x + 1, 0.9), -5, 5)"
    times, values = make_stream(rng, 300)
    plan = compile_query(query)
    assert any(n.op == "fused" for n in plan.nodes)
    oracle = run_batch(compile_query(query, fuse=False), times, values)
    assert_bytes_equal(run_batch(plan, times, values), oracle, "no-compiler")


@pytest.mark.parametrize("seed", SEEDS)
def test_native_join_matches_numpy_join(seed):
    # The C merge kernel and the vectorized numpy merge are independent
    # implementations of the same sample-and-hold union; they must
    # agree to the byte, including ties and held-tail behaviour.
    if not native.available():
        pytest.skip("no native backend on this machine")
    rng = np.random.default_rng(2000 + seed)
    query = "min(a, 2*b) - max(a, b)"
    streams = {}
    for name in ("a", "b"):
        n = int(rng.integers(20, 300))
        # Integer-ish times force cross-signal ties through the merge.
        times = np.cumsum(rng.integers(1, 4, n)).astype(np.float64)
        streams[name] = (times, rng.standard_normal(n))
    native_out = execute(streams, compile_query(query))
    import os

    os.environ["REPRO_NATIVE"] = "0"
    native.reset()
    kernels.reset_cache()
    try:
        numpy_out = execute(streams, compile_query(query, fuse=True))
    finally:
        del os.environ["REPRO_NATIVE"]
        native.reset()
        kernels.reset_cache()
    (got,) = native_out.values()
    (want,) = numpy_out.values()
    assert_bytes_equal(got, want, "native vs numpy join")


def test_fused_ewma_rejects_nonfinite_like_unfused():
    from repro.query.errors import QueryError

    times = np.array([1.0, 2.0, 3.0])
    values = np.array([1.0, np.inf, 2.0])
    for fuse in (False, True):
        plan = compile_query("ewma(x, 0.5)", fuse=fuse)
        with pytest.raises(QueryError, match="finite"):
            execute({"x": (times, values)}, plan)


# ----------------------------------------------------------------------
# Structural contract: barriers and chain endings
# ----------------------------------------------------------------------
_BARRIERS = ("join", "window", "resample", "edges")


def fused_steps(plan):
    return [
        step_op
        for node in plan.nodes
        if node.op == "fused"
        for step_op, _ in node.params[0]
    ]


@pytest.mark.parametrize(
    "query,barrier",
    [
        ("ewma(a, 0.9) + ewma(b, 0.9)", "join"),
        ("sum_over(2*a + 1, 5)", "window"),
        ("resample(abs(a), 10)", "resample"),
        ("edges(2*a, 0, either)", "edges"),
    ],
)
def test_fusion_never_crosses_barriers(query, barrier):
    plan = compile_query(query, fuse=True)
    ops = [node.op for node in plan.nodes]
    assert barrier in ops, f"{query}: barrier node was absorbed"
    inside = fused_steps(plan)
    assert all(op not in _BARRIERS for op in inside), (
        f"{query}: fused chain swallowed a barrier: {inside}"
    )


def test_shared_intermediate_ends_its_chain():
    # _d has two consumers; absorbing it into either would recompute it.
    plan = compile_query("_d = 2*a; p = _d + b; q = _d - b", fuse=True)
    fused = [n for n in plan.nodes if n.op == "fused"]
    assert len(fused) == 1  # _d's maps chain, alone
    consumers = [n for n in plan.nodes if fused[0].id in n.inputs]
    assert len(consumers) == 2


def test_published_intermediate_ends_its_chain():
    # d is published: its column must exist, so ewma starts a new chain.
    plan = compile_query("d = 2*a; s = ewma(d, 0.9)", fuse=True)
    fused = [n for n in plan.nodes if n.op == "fused"]
    assert len(fused) == 2
    assert plan.outputs["d"] in {n.id for n in fused}


def test_single_op_chains_become_fused_nodes():
    plan = compile_query("2*a", fuse=True)
    (fused,) = [n for n in plan.nodes if n.op == "fused"]
    assert [op for op, _ in fused.params[0]] == ["maps"]


def test_explain_names_backend_and_steps():
    plan = compile_query("clip(2*a - 1, -2.5, 2.5)", fuse=True)
    text = plan.explain()
    assert "fused[" in text and "clip" in text
