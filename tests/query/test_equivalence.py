"""Randomized incremental-vs-batch equivalence.

The engine's core guarantee: a query computed incrementally from live
tap batches (jittered sizes, interleaved signals, occasional
out-of-order samples) and the same query executed in one shot over the
capture of that run produce **byte-identical** derived columns.  Three
comparisons per seed:

1. live observer stream  ==  batch execution over the capture,
2. live derived traces *recorded into the capture* (the LiveQuery
   pushes back into the tapped manager, so the CaptureWriter records
   them)  ==  batch re-derivation — the ISSUE's "re-run against a
   capture reproduces the live derived traces bit-for-bit",
3. two incremental runs with different batch splits agree with each
   other.
"""

import numpy as np
import pytest

from repro.capture import CaptureReader, CaptureWriter
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.net.shard import ShardedScopeManager
from repro.query import LiveQuery, Runtime, compile_query, execute

pytestmark = pytest.mark.query

#: One program exercising every operator family: join (sub/mul), scalar
#: map, comparison, ewma, rate, delta, windowed aggregates, resample,
#: edges, clip, min/max and a shared private intermediate.
PROGRAM = """
_d = a - 0.5*b
diff = _d
smooth = ewma(_d, 0.7)
fast = lowpass(a, 0.3)
slope = rate(a)
step = delta(b)
load = sum_over(a, 25)
peak = max_over(b, 40)
grid = resample(a, 10)
cross = edges(a, 0, either)
band = clip(min(a, b), -1.5, 1.5)
hot = a > b
"""

SIGNALS = ("a", "b", "c")  # c is pushed but unused by the program


def make_streams(rng, n_per_signal):
    """Per-signal (times, values) with jitter and occasional late samples."""
    streams = {}
    for name in SIGNALS:
        gaps = rng.uniform(0.05, 4.0, n_per_signal)
        times = np.cumsum(gaps) + rng.uniform(0, 2.0)
        # ~5% of samples stamped into the past (late; the engine drops
        # them identically in both modes).
        late = rng.random(n_per_signal) < 0.05
        times = np.where(late, times - rng.uniform(1.0, 6.0, n_per_signal), times)
        values = rng.standard_normal(n_per_signal)
        streams[name] = (times, values)
    return streams


def feed_jittered(rng, streams, push):
    """Interleave signals in randomly sized batches through ``push``."""
    cursors = {name: 0 for name in streams}
    while any(cursors[n] < streams[n][0].shape[0] for n in streams):
        name = SIGNALS[int(rng.integers(len(SIGNALS)))]
        times, values = streams[name]
        cursor = cursors[name]
        if cursor >= times.shape[0]:
            continue
        n = int(rng.integers(1, 9))
        push(name, times[cursor : cursor + n], values[cursor : cursor + n])
        cursors[name] = cursor + n


def concat_outputs(chunks):
    out = {}
    for name, (times_list, values_list) in chunks.items():
        if times_list:
            out[name] = (np.concatenate(times_list), np.concatenate(values_list))
        else:
            out[name] = (np.empty(0), np.empty(0))
    return out


class Collector:
    def __init__(self, names):
        self.chunks = {name: ([], []) for name in names}

    def __call__(self, name, times, values):
        self.chunks[name][0].append(times)
        self.chunks[name][1].append(values)

    def columns(self):
        return concat_outputs(self.chunks)


def assert_columns_identical(left, right, context):
    assert set(left) == set(right), context
    for name in left:
        lt, lv = left[name]
        rt, rv = right[name]
        assert lt.tobytes() == rt.tobytes(), f"{context}: {name} times differ"
        assert lv.tobytes() == rv.tobytes(), f"{context}: {name} values differ"


@pytest.mark.parametrize("seed", range(8))
def test_live_tap_vs_capture_execution(tmp_path, seed):
    rng = np.random.default_rng(seed)
    plan = compile_query(PROGRAM)
    streams = make_streams(rng, n_per_signal=400)

    # --- live run: tapped manager, writer attached before the query so
    # the capture records raw pushes ahead of the derived feedback.
    manager = ScopeManager()
    scope = manager.scope_new("rig", delay_ms=1e12)
    for name in SIGNALS:
        scope.signal_new(buffer_signal(name))
    for name in plan.output_names:
        scope.signal_new(buffer_signal(name))
    writer = CaptureWriter(tmp_path / "store", segment_samples=512)
    manager.add_tap(writer)
    live = LiveQuery(plan, manager)
    collector = Collector(plan.output_names)
    live.on_output(collector)
    feed_jittered(
        rng, streams, lambda name, t, v: manager.push_samples(name, t, v)
    )
    live.finish()
    writer.close()
    live_columns = collector.columns()
    assert sum(t.shape[0] for t, _ in live_columns.values()) > 0
    assert any(count > 0 for count in live.dropped.values())

    # --- batch run over the capture's raw columns.
    with CaptureReader(tmp_path / "store") as reader:
        batch_columns = execute(reader, plan)
        # The capture also recorded the live derived traces (the query
        # pushed them back into the tapped manager).
        recorded_columns = {
            name: reader.read_signal(name) for name in plan.output_names
        }
        recorded_columns = {
            name: (t.copy(), v.copy()) for name, (t, v) in recorded_columns.items()
        }

    assert_columns_identical(live_columns, batch_columns, f"seed {seed} live/batch")
    assert_columns_identical(
        recorded_columns, batch_columns, f"seed {seed} recorded/batch"
    )


@pytest.mark.parametrize("seed", range(4))
def test_two_batchings_agree(seed):
    rng = np.random.default_rng(1000 + seed)
    plan = compile_query(PROGRAM)
    streams = make_streams(rng, n_per_signal=300)

    results = []
    for split_seed in (1, 2):
        split_rng = np.random.default_rng(split_seed * 7919 + seed)
        runtime = Runtime(plan)
        collector = Collector(plan.output_names)
        for name in plan.output_names:
            runtime.add_sink(
                name,
                lambda t, v, _name=name: collector(_name, t, v),
            )
        feed_jittered(split_rng, streams, runtime.feed)
        runtime.finish()
        results.append(collector.columns())
    assert_columns_identical(results[0], results[1], f"seed {seed} splits")


def test_live_query_on_sharded_manager(tmp_path):
    """A LiveQuery taps every shard; derived pushes reroute by name."""
    rng = np.random.default_rng(42)
    sharded = ShardedScopeManager(shards=4)
    for name in SIGNALS:
        scope = sharded.scope_new(f"scope-{name}", shard=sharded.shard_of(name))
        scope.signal_new(buffer_signal(name))
    plan = compile_query("d = a - 0.5*b; s = ewma(d, 0.9)")
    live = LiveQuery(plan, sharded)
    collector = Collector(plan.output_names)
    live.on_output(collector)
    streams = make_streams(rng, n_per_signal=200)
    feed_jittered(
        rng, streams, lambda name, t, v: sharded.push_samples(name, t, v)
    )
    live.finish()
    live_columns = collector.columns()

    # Batch mode sees the same raw per-signal streams; the source
    # operators shed the late samples identically in both modes.
    raw = {name: streams[name] for name in ("a", "b")}
    batch_columns = execute(raw, plan)
    assert_columns_identical(live_columns, batch_columns, "sharded live/batch")


class TestTapSafety:
    """A tap runs inside the producer's push path: it must never raise."""

    def test_push_after_finish_is_dropped_not_raised(self):
        manager = ScopeManager()
        scope = manager.scope_new("rig", delay_ms=1e12)
        scope.signal_new(buffer_signal("x"))
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        manager.push_samples("x", [1.0], [1.0])
        live.finish()  # flushes tails, then detaches
        assert not live.attached
        manager.push_samples("x", [2.0], [2.0])  # must not raise

    def test_failing_query_quarantines_itself(self):
        manager = ScopeManager()
        scope = manager.scope_new("rig", delay_ms=1e12)
        for name in ("a", "b", "d"):
            scope.signal_new(buffer_signal(name))
        live = LiveQuery("d = ewma(a / b, 0.9)", manager)
        manager.push_samples("a", [0.0, 1.0], [1.0, 1.0])
        # b = 0 makes a/b infinite; ewma rejects it.  The producer's
        # push must survive and the query must record its failure.
        manager.push_samples("b", [0.0, 1.0], [1.0, 0.0])
        assert live.error is not None
        assert "not finite" in str(live.error)
        manager.push_samples("a", [2.0], [1.0])  # quarantined: ignored

    def make_rig(self):
        manager = ScopeManager()
        scope = manager.scope_new("rig", delay_ms=1e12)
        for name in ("x", "d"):
            scope.signal_new(buffer_signal(name))
        return manager

    def test_failing_output_observer_quarantines_not_raises(self):
        """ANY emission-path failure quarantines — not just QueryError.

        Observers and the manager push-back run inside the producer's
        push path; a crashing observer must never raise through
        ``push_samples``.
        """
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        live.on_output(lambda n, t, v: (_ for _ in ()).throw(RuntimeError("boom")))
        manager.push_samples("x", [1.0], [1.0])  # must not raise
        assert isinstance(live.error, RuntimeError)
        assert live.quarantined

    def test_quarantine_auto_detaches(self):
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        live.on_output(lambda n, t, v: (_ for _ in ()).throw(RuntimeError("boom")))
        assert live.attached
        manager.push_samples("x", [1.0], [1.0])
        # A quarantined query must not stay attached forever, eating a
        # tap slot and re-failing on every future push.
        assert not live.attached

    def test_attach_rejected_on_quarantined_query(self):
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        live.on_output(lambda n, t, v: (_ for _ in ()).throw(RuntimeError("boom")))
        manager.push_samples("x", [1.0], [1.0])
        with pytest.raises(ValueError, match="quarantined"):
            live.attach(manager)

    def test_attach_rejected_on_finished_query(self):
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        live.finish()
        with pytest.raises(ValueError, match="finished"):
            live.attach(manager)

    def test_on_quarantine_observer_fires_once_with_the_error(self):
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        seen = []
        live.on_quarantine(lambda lq, exc: seen.append((lq, exc)))
        live.on_output(lambda n, t, v: (_ for _ in ()).throw(RuntimeError("boom")))
        manager.push_samples("x", [1.0], [1.0])
        manager.push_samples("x", [2.0], [2.0])  # already detached anyway
        assert len(seen) == 1
        assert seen[0][0] is live and isinstance(seen[0][1], RuntimeError)

    def test_failing_quarantine_observer_is_swallowed(self):
        manager = self.make_rig()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        live.on_quarantine(lambda lq, exc: (_ for _ in ()).throw(ValueError("worse")))
        live.on_output(lambda n, t, v: (_ for _ in ()).throw(RuntimeError("boom")))
        manager.push_samples("x", [1.0], [1.0])  # must not raise
        assert isinstance(live.error, RuntimeError)

    def test_manager_push_failure_quarantines(self):
        class ExplodingManager:
            def __init__(self):
                self.taps = []

            def add_tap(self, tap):
                self.taps.append(tap)

            def remove_tap(self, tap):
                self.taps.remove(tap)

            def push_samples(self, name, times, values):
                raise OSError("downstream gone")

        manager = ExplodingManager()
        live = LiveQuery("d = ewma(x, 0.9)", manager)
        # Feed directly through the tap interface: the derived push-back
        # into the exploding manager must quarantine, not raise.
        live("x", [1.0], [1.0], 1.0)
        assert isinstance(live.error, OSError)
        assert not live.attached and manager.taps == []
