"""Bind-time parameters and canonical plan keys.

``$name`` placeholders substitute textually before lexing, so one query
text serves many parameterizations; ``plan_key`` canonicalizes compiled
plans so the server can share one evaluation across subscribers whose
spellings (whitespace, comments, parameter names) differ but whose
compiled DAGs agree.
"""

import pytest

from repro.query import (
    QueryCompileError,
    bind_params,
    compile_query,
    plan_key,
)


class TestBindParams:
    def test_substitutes_values_parenthesized(self):
        out = bind_params("s = ewma(x, $al); hot = x > $lim", {"al": 0.9, "lim": -5})
        assert out == "s = ewma(x, (0.9)); hot = x > (-5.0)"

    def test_no_params_passthrough(self):
        assert bind_params("s = ewma(x, 0.9)") == "s = ewma(x, 0.9)"
        assert bind_params("s = ewma(x, 0.9)", {}) == "s = ewma(x, 0.9)"

    def test_unbound_placeholder_rejected(self):
        with pytest.raises(QueryCompileError, match="unbound"):
            bind_params("s = ewma(x, $al)")

    def test_unused_parameter_rejected(self):
        with pytest.raises(QueryCompileError, match="unused"):
            bind_params("s = ewma(x, 0.9)", {"al": 0.9})

    def test_non_finite_value_rejected(self):
        with pytest.raises(QueryCompileError, match="finite"):
            bind_params("s = ewma(x, $al)", {"al": float("nan")})

    def test_non_numeric_value_rejected(self):
        with pytest.raises(QueryCompileError):
            bind_params("s = ewma(x, $al)", {"al": "high"})

    def test_bound_text_compiles(self):
        plan = compile_query(bind_params("s = ewma(x, $al)", {"al": 0.875}))
        assert plan.output_names == ["s"]

    def test_negative_value_binds_safely_into_expressions(self):
        # (−5.0) parenthesized: `x - $d` must not become `x - -5.0` with
        # surprising precedence.
        plan = compile_query(bind_params("s = x - $d", {"d": -5}))
        assert plan.output_names == ["s"]


class TestPlanKey:
    def test_spelling_invariant(self):
        a = compile_query("s = ewma(x, 0.9)")
        b = compile_query("s   =   ewma( x ,  0.9 )  # comment")
        assert plan_key(a) == plan_key(b)

    def test_param_spelling_invariant(self):
        a = compile_query(bind_params("s = ewma(x, $alpha)", {"alpha": 0.9}))
        b = compile_query("s = ewma(x, 0.9)")
        assert plan_key(a) == plan_key(b)

    def test_different_param_values_differ(self):
        a = compile_query(bind_params("s = ewma(x, $al)", {"al": 0.9}))
        b = compile_query(bind_params("s = ewma(x, $al)", {"al": 0.5}))
        assert plan_key(a) != plan_key(b)

    def test_different_sources_differ(self):
        assert plan_key(compile_query("s = ewma(x, 0.9)")) != plan_key(
            compile_query("s = ewma(y, 0.9)")
        )

    def test_different_output_names_differ(self):
        assert plan_key(compile_query("s = ewma(x, 0.9)")) != plan_key(
            compile_query("t = ewma(x, 0.9)")
        )

    def test_key_is_hashable(self):
        plan = compile_query("s = ewma(x, 0.9)")
        assert {plan_key(plan): 1}[plan_key(plan)] == 1
