"""Operator semantics: each operator family against a hand-computed or
core-module oracle, plus runtime plumbing (sinks, finish, errors)."""

import numpy as np
import pytest

from repro.core.lowpass import LowPassFilter
from repro.core.trigger import Edge, Trigger
from repro.query import QueryError, Runtime, compile_query, execute


def run(query, **columns):
    """Batch-execute ``query`` over keyword columns ``name=(times, values)``."""
    return execute({k: (np.asarray(t, float), np.asarray(v, float))
                    for k, (t, v) in columns.items()}, query)


class TestElementwise:
    def test_scalar_arithmetic(self):
        out = run("x * 2 + 1", x=([0, 1, 2], [1.0, 2.0, 3.0]))
        t, v = out["query"]
        assert t.tolist() == [0, 1, 2]
        assert v.tolist() == [3.0, 5.0, 7.0]

    def test_comparison_yields_indicator(self):
        _, v = run("x > 0.5", x=([0, 1, 2], [0.2, 0.5, 0.9]))["query"]
        assert v.tolist() == [0.0, 0.0, 1.0]

    def test_abs_neg_clip(self):
        _, v = run("abs(-x)", x=([0, 1], [-2.0, 3.0]))["query"]
        assert v.tolist() == [2.0, 3.0]
        _, v = run("clip(x, -1, 1)", x=([0, 1, 2], [-5.0, 0.5, 5.0]))["query"]
        assert v.tolist() == [-1.0, 0.5, 1.0]

    def test_scalar_on_left(self):
        _, v = run("10 / x", x=([0, 1], [2.0, 5.0]))["query"]
        assert v.tolist() == [5.0, 2.0]

    def test_division_by_zero_is_numpy_semantics(self):
        _, v = run("x / y", x=([0, 1], [1.0, 0.0]), y=([0, 1], [0.0, 0.0]))[
            "query"
        ]
        # t=0: y's first sample lands at 0, so the point is defined; 1/0 = inf
        assert v[0] == np.inf


class TestJoin:
    def test_sample_and_hold_union_timeline(self):
        out = run(
            "a + b", a=([0, 10, 20], [1.0, 2.0, 3.0]), b=([5, 15], [10.0, 20.0])
        )
        t, v = out["query"]
        # Nothing before both sides initialise (t=5); then the union grid.
        assert t.tolist() == [5, 10, 15, 20]
        assert v.tolist() == [11.0, 12.0, 22.0, 23.0]

    def test_coalesced_equal_timestamps(self):
        out = run("a - b", a=([0, 10], [5.0, 7.0]), b=([0, 10], [1.0, 2.0]))
        t, v = out["query"]
        assert t.tolist() == [0, 10]
        assert v.tolist() == [4.0, 5.0]

    def test_elementwise_min_max(self):
        t, v = run("max(a, b)", a=([0, 1], [1.0, 5.0]), b=([0, 1], [3.0, 2.0]))[
            "query"
        ]
        assert v.tolist() == [3.0, 5.0]

    def test_one_sided_stream_emits_nothing(self):
        out = run("a + b", a=([0, 1, 2], [1.0, 1.0, 1.0]), b=([], []))
        t, v = out["query"]
        assert t.shape[0] == 0


class TestMonotonicity:
    def test_out_of_order_samples_dropped_and_counted(self):
        plan = compile_query("x + 0")
        runtime = Runtime(plan)
        got = []
        runtime.add_sink("query", lambda t, v: got.append((t, v)))
        runtime.feed("x", [0.0, 10.0, 5.0, 20.0], [1.0, 2.0, 3.0, 4.0])
        runtime.finish()
        times = np.concatenate([t for t, _ in got])
        assert times.tolist() == [0.0, 10.0, 20.0]
        assert runtime.dropped == {"x": 1}
        assert runtime.accepted == {"x": 3}

    def test_equal_timestamps_dropped(self):
        runtime = Runtime(compile_query("x + 0"))
        runtime.feed("x", [1.0, 1.0, 1.0], [1.0, 2.0, 3.0])
        assert runtime.dropped == {"x": 2}

    def test_nan_timestamps_dropped_without_poisoning(self):
        runtime = Runtime(compile_query("x + 0"))
        got = []
        runtime.add_sink("query", lambda t, v: got.append(t))
        runtime.feed("x", [0.0, float("nan"), 5.0], [1.0, 2.0, 3.0])
        assert np.concatenate(got).tolist() == [0.0, 5.0]
        assert runtime.dropped == {"x": 1}


class TestRateDelta:
    def test_rate_is_per_second(self):
        t, v = run("rate(x)", x=([0, 1000, 1500], [0.0, 500.0, 600.0]))["query"]
        assert t.tolist() == [1000, 1500]
        assert v.tolist() == [500.0, 200.0]

    def test_delta(self):
        t, v = run("delta(x)", x=([0, 10, 20], [5.0, 3.0, 8.0]))["query"]
        assert v.tolist() == [-2.0, 5.0]


class TestEwma:
    def test_matches_core_lowpass(self):
        values = np.array([1.0, 5.0, 2.0, 8.0, 3.0])
        times = np.arange(5.0)
        expected = LowPassFilter(0.7).apply_many(values)
        _, v = run("ewma(x, 0.7)", x=(times, values))["query"]
        assert v.tobytes() == expected.tobytes()

    def test_non_finite_input_is_a_typed_query_error(self):
        # Upstream arithmetic can produce Inf (division by zero); the
        # reused LowPassFilter rejects it, surfaced as a QueryError.
        with pytest.raises(QueryError, match="not finite"):
            run(
                "ewma(a / b, 0.9)",
                a=([0, 1], [1.0, 1.0]),
                b=([0, 1], [1.0, 0.0]),
            )

    def test_lowpass_alias(self):
        cols = {"x": (np.arange(4.0), np.array([1.0, 2.0, 3.0, 4.0]))}
        assert (
            execute(cols, "ewma(x, 0.5)")["query"][1].tobytes()
            == execute(cols, "lowpass(x, 0.5)")["query"][1].tobytes()
        )


class TestResample:
    def test_grid_and_hold(self):
        t, v = run("resample(x, 10)", x=([3, 12, 25], [1.0, 2.0, 3.0]))["query"]
        # grid 10 holds the t=3 sample; grid 20 holds t=12; grid 30 is
        # beyond the last sample and must not be emitted.
        assert t.tolist() == [10.0, 20.0]
        assert v.tolist() == [1.0, 2.0]

    def test_sample_exactly_on_grid(self):
        t, v = run("resample(x, 10)", x=([10, 20], [7.0, 9.0]))["query"]
        assert t.tolist() == [10.0, 20.0]
        assert v.tolist() == [7.0, 9.0]

    def test_unit_suffix_period(self):
        t, _ = run("resample(x, 1s)", x=([0, 2500], [1.0, 2.0]))["query"]
        assert t.tolist() == [0.0, 1000.0, 2000.0]


class TestWindows:
    def test_sum_over_tumbling_windows(self):
        t, v = run("sum_over(x, 10)", x=([1, 5, 12], [1.0, 2.0, 4.0]))["query"]
        # window [0,10) closes when t=12 arrives; [10,20) closes at finish
        assert t.tolist() == [10.0, 20.0]
        assert v.tolist() == [3.0, 4.0]

    def test_kinds_match_aggregator_semantics(self):
        x = ([1, 2, 3, 11], [4.0, 6.0, 2.0, 9.0])
        assert run("max_over(x, 10)", x=x)["query"][1][0] == 6.0
        assert run("min_over(x, 10)", x=x)["query"][1][0] == 2.0
        assert run("avg_over(x, 10)", x=x)["query"][1][0] == 4.0
        assert run("events_over(x, 10)", x=x)["query"][1][0] == 3.0
        assert run("any_over(x, 10)", x=x)["query"][1][0] == 1.0
        # rate_over: sum / (window in seconds) = 12 / 0.01s
        assert run("rate_over(x, 10)", x=x)["query"][1][0] == 12.0 / 0.01

    def test_empty_windows_emit_nothing(self):
        t, _ = run("events_over(x, 10)", x=([1, 95], [1.0, 1.0]))["query"]
        assert t.tolist() == [10.0, 100.0]


class TestEdges:
    def test_rising_and_falling_marks(self):
        t, v = run(
            "edges(x, 0, either)", x=([0, 1, 2, 3], [-1.0, 1.0, -1.0, 1.0])
        )["query"]
        assert t.tolist() == [1, 2, 3]
        assert v.tolist() == [1.0, -1.0, 1.0]

    def test_default_is_rising_only(self):
        t, v = run("edges(x, 0)", x=([0, 1, 2], [-1.0, 1.0, -1.0]))["query"]
        assert t.tolist() == [1]
        assert v.tolist() == [1.0]

    def test_matches_trigger_detect(self):
        rng = np.random.default_rng(3)
        values = rng.standard_normal(200)
        times = np.arange(200.0)
        events = Trigger(0.3, Edge.EITHER).detect(values)
        t, v = run("edges(x, 0.3, either)", x=(times, values))["query"]
        assert t.tolist() == [float(e.index) for e in events]
        assert v.tolist() == [
            1.0 if e.edge is Edge.RISING else -1.0 for e in events
        ]


class TestRuntimePlumbing:
    def test_identity_rename_republishes_a_source(self):
        out = run("mirror = x", x=([0, 1], [4.0, 5.0]))
        assert out["mirror"][1].tolist() == [4.0, 5.0]

    def test_unknown_sink_name_rejected(self):
        runtime = Runtime(compile_query("x + 1"))
        with pytest.raises(QueryError, match="publishes no output"):
            runtime.add_sink("nope", lambda t, v: None)

    def test_feed_after_finish_rejected(self):
        runtime = Runtime(compile_query("x + 1"))
        runtime.finish()
        with pytest.raises(QueryError, match="finished"):
            runtime.feed("x", [0.0], [1.0])

    def test_feed_unknown_name_is_ignored(self):
        runtime = Runtime(compile_query("x + 1"))
        assert runtime.feed("other", [0.0], [1.0]) is False

    def test_missing_capture_signal_rejected(self):
        with pytest.raises(QueryError, match="not provided"):
            execute({"a": (np.zeros(1), np.zeros(1))}, "a + b")

    def test_mismatched_columns_rejected(self):
        with pytest.raises(QueryError, match="equal-length"):
            execute({"x": (np.zeros(3), np.zeros(2))}, "x + 1")

    def test_finish_is_idempotent(self):
        out = []
        runtime = Runtime(compile_query("sum_over(x, 10)"))
        runtime.add_sink("query", lambda t, v: out.append(v))
        runtime.feed("x", [1.0], [2.0])
        runtime.finish()
        runtime.finish()
        assert len(out) == 1
