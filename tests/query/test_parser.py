"""Parser and compiler edge cases: grammar, units, and every rejection."""

import pytest

from repro.query import (
    QueryCompileError,
    QueryError,
    QuerySyntaxError,
    compile_query,
    parse,
)
from repro.query.parser import Binary, Call, Num, Ref, Unary


class TestGrammar:
    def test_precedence_mul_over_add(self):
        expr = parse("a + b * c").stmts[0].expr
        assert isinstance(expr, Binary) and expr.op == "add"
        assert isinstance(expr.right, Binary) and expr.right.op == "mul"

    def test_precedence_add_over_comparison(self):
        expr = parse("a + 1 > b").stmts[0].expr
        assert isinstance(expr, Binary) and expr.op == "gt"
        assert isinstance(expr.left, Binary) and expr.left.op == "add"

    def test_parentheses_override(self):
        expr = parse("(a + b) * c").stmts[0].expr
        assert expr.op == "mul" and expr.left.op == "add"

    def test_unary_minus_folds_literals(self):
        assert parse("-3").stmts[0].expr == Num(-3.0)
        expr = parse("-a").stmts[0].expr
        assert isinstance(expr, Unary) and expr.op == "neg"

    def test_unary_plus_is_dropped(self):
        assert parse("+a").stmts[0].expr == Ref("a")

    def test_call_with_args(self):
        expr = parse("ewma(queue, 0.9)").stmts[0].expr
        assert expr == Call("ewma", (Ref("queue"), Num(0.9)))

    def test_named_and_anonymous_statements(self):
        program = parse("load = ewma(cpu, 0.9); rate(pkts)")
        assert program.stmts[0].name == "load"
        assert program.stmts[1].name is None

    def test_newlines_and_comments_separate_statements(self):
        program = parse("# derived load\nload = cpu + 1\nother = cpu - 1\n")
        assert [s.name for s in program.stmts] == ["load", "other"]

    def test_dotted_signal_names(self):
        assert parse("queue.depth + 1").stmts[0].expr.left == Ref("queue.depth")

    def test_number_forms(self):
        assert parse(".5").stmts[0].expr == Num(0.5)
        assert parse("1e3").stmts[0].expr == Num(1000.0)

    def test_time_unit_literals_normalise_to_ms(self):
        assert parse("10ms").stmts[0].expr == Num(10.0)
        assert parse("1s").stmts[0].expr == Num(1000.0)
        assert parse("500us").stmts[0].expr == Num(0.5)
        assert parse("2.5s").stmts[0].expr == Num(2500.0)

    def test_unit_must_attach_to_number(self):
        # `ms` alone is just an identifier.
        assert parse("ms").stmts[0].expr == Ref("ms")


class TestSyntaxErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            ";;",
            "a $ b",
            "(a + b",
            "a + * b",
            "a +",
            "f(a,)",
            "= a",
            "a b",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(QuerySyntaxError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(QuerySyntaxError) as err:
            parse("a ^ b")
        assert "offset" in str(err.value)

    def test_syntax_error_is_a_query_error(self):
        with pytest.raises(QueryError):
            parse("(((")


class TestCompileErrors:
    def test_unknown_function(self):
        with pytest.raises(QueryCompileError, match="unknown function 'foo'"):
            compile_query("foo(x)")

    @pytest.mark.parametrize(
        "text",
        ["ewma(x)", "abs(x, y)", "rate()", "clip(x, 1)", "edges(x)"],
    )
    def test_arity(self, text):
        with pytest.raises(QueryCompileError, match="argument"):
            compile_query(text)

    def test_non_constant_parameter(self):
        with pytest.raises(QueryCompileError, match="constant"):
            compile_query("ewma(x, y)")

    def test_alpha_out_of_range(self):
        with pytest.raises(QueryCompileError, match="alpha"):
            compile_query("ewma(x, 1.5)")

    def test_cyclic_definitions(self):
        with pytest.raises(QueryCompileError, match="cyclic definition"):
            compile_query("p = q + 1; q = p * 2")

    def test_self_cycle(self):
        with pytest.raises(QueryCompileError, match="cyclic definition: p -> p"):
            compile_query("p = rate(p)")

    def test_forward_reference_is_not_a_cycle(self):
        plan = compile_query("p = q + 1; q = rate(x)")
        assert plan.output_names == ["p", "q"]

    def test_duplicate_definition(self):
        with pytest.raises(QueryCompileError, match="duplicate"):
            compile_query("p = a; p = b")

    def test_two_anonymous_expressions(self):
        with pytest.raises(QueryCompileError, match="anonymous"):
            compile_query("a + 1; b * 2")

    def test_constant_only_query(self):
        with pytest.raises(QueryCompileError, match="constant"):
            compile_query("1 + 2 * 3")

    def test_output_shadowing_its_source(self):
        # The anonymous output is named "query" and reads signal "query":
        # a live tap would feed its own emissions back in.  Names resolve
        # definition-first, so this surfaces as a self-cycle.
        with pytest.raises(QueryCompileError, match="cyclic definition"):
            compile_query("rate(query)")

    def test_all_private_intermediates(self):
        with pytest.raises(QueryCompileError, match="publishes nothing"):
            compile_query("_t = rate(x)")

    def test_clip_inverted_bounds(self):
        with pytest.raises(QueryCompileError, match="inverted"):
            compile_query("clip(x, 2, 1)")

    def test_resample_period_positive(self):
        with pytest.raises(QueryCompileError, match="positive"):
            compile_query("resample(x, 0)")

    def test_window_positive(self):
        with pytest.raises(QueryCompileError, match="positive"):
            compile_query("sum_over(x, -5)")

    def test_edges_direction(self):
        with pytest.raises(QueryCompileError, match="direction"):
            compile_query("edges(x, 1, up)")


class TestCompilation:
    def test_sources_and_outputs(self):
        plan = compile_query("d = cwnd - 0.5*rtt; s = ewma(d, 0.9)")
        assert plan.source_names == ["cwnd", "rtt"]
        assert plan.output_names == ["d", "s"]

    def test_hash_consing_shares_subexpressions(self):
        shared = compile_query("ewma(q, 0.9) - ewma(q, 0.9)")
        distinct = compile_query("ewma(q, 0.9) - ewma(q, 0.8)")
        # source + one ewma + join  vs  source + two ewmas + join
        assert len(shared.nodes) == 3
        assert len(distinct.nodes) == 4

    def test_constant_folding_fuses_scalar_ops(self):
        # fuse=False: this asserts the *lowering* (folded scalar side),
        # before the fusion pass rewrites maps chains into fused nodes.
        plan = compile_query("x * (2 + 3)", fuse=False)
        kinds = [node.op for node in plan.nodes]
        assert kinds == ["source", "maps"]
        assert plan.nodes[1].params == ("mul", 5.0, False)

    def test_division_by_folded_zero_matches_runtime(self):
        # numpy semantics, not a ZeroDivisionError at compile time
        plan = compile_query("x + 1 / 0", fuse=False)
        assert plan.nodes[1].params[1] == float("inf")

    def test_private_intermediates_are_shared_not_published(self):
        plan = compile_query("_d = a - b; lo = min(_d, 0); hi = max(_d, 0)")
        assert plan.output_names == ["lo", "hi"]
        assert sum(1 for n in plan.nodes if n.op == "join") == 1

    def test_default_name_applies_to_anonymous(self):
        plan = compile_query("rate(pkts)", default_name="throughput")
        assert plan.output_names == ["throughput"]
