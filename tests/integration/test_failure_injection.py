"""Failure injection: the system must degrade, not crash.

A live visualization tool meets misbehaving inputs constantly — clients
vanish mid-line, signals are removed while data is in flight, recordings
are truncated, remote streams stall.  These tests inject those faults
and assert the documented degraded behaviour.
"""

import io

import pytest

from repro.core.manager import ScopeManager
from repro.core.scope import Scope
from repro.core.signal import Cell, buffer_signal, func_signal, memory_signal
from repro.core.tuples import Player, TupleFormatError
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair


def make_world(delay_ms=100.0):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", period_ms=50, delay_ms=delay_ms)
    scope.signal_new(buffer_signal("m"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock)
    server.add_client(far)
    client = ScopeClient(near, loop)
    return loop, scope, server, client


class TestNetworkFaults:
    def test_client_vanishes_mid_line(self):
        """A partial tuple followed by a close must not corrupt earlier
        data or take the server down."""
        loop, scope, server, client = make_world()
        client.send_sample("m", 1.0)
        loop.run_for(200)
        client.endpoint.send(b"123 4")  # half a tuple...
        client.endpoint.close()  # ...then gone
        loop.run_for(300)
        assert scope.value_of("m") == 1.0  # the complete sample survived
        totals = server.totals()
        assert totals["accepted"] == 1

    def test_interleaved_garbage_only_kills_that_client(self):
        loop, scope, server, client = make_world()
        near2, far2 = memory_pair(loop.clock)
        server.add_client(far2)
        client2 = ScopeClient(near2, loop)

        client.endpoint.send(b"complete garbage\n")
        client2.send_sample("m", 7.0)
        loop.run_for(300)
        states = server.clients
        assert len(states) == 1  # the offender was pruned
        assert states[0].connected  # the good client keeps flowing
        assert server.totals()["protocol_errors"] == 1
        assert scope.value_of("m") == 7.0

    def test_stalled_client_resumes(self):
        """Silence is not an error: a stream may stall for seconds and
        resume; only late samples are dropped."""
        loop, scope, server, client = make_world(delay_ms=100)
        client.send_sample("m", 1.0)
        loop.run_for(2000)  # long stall
        client.send_sample("m", 2.0)
        loop.run_for(300)
        assert scope.value_of("m") == 2.0
        assert server.totals()["dropped_late"] == 0


class TestScopeFaults:
    def test_signal_removed_with_data_in_flight(self):
        loop, scope, server, client = make_world()
        client.send_sample("m", 3.0)
        scope.signal_remove("m")
        loop.run_for(300)  # the buffered sample finds no channel: dropped

    def test_failing_func_signal_propagates_cleanly(self):
        """A FUNC callback that raises is an application bug; the error
        must surface (not be swallowed into a corrupt display)."""
        loop = MainLoop()
        scope = Scope("s", loop, period_ms=50)

        def bad(*_):
            raise RuntimeError("sensor exploded")

        scope.signal_new(func_signal("bad", bad))
        scope.start_polling()
        with pytest.raises(RuntimeError, match="sensor exploded"):
            loop.run_for(100)

    def test_zero_size_recording_plays_back_as_empty(self):
        loop = MainLoop()
        scope = Scope("s", loop)
        scope.set_playback_mode(Player(io.StringIO("")))
        scope.start_polling()
        loop.run_for(500)
        assert scope.channels == []

    def test_truncated_recording_rejected_at_load(self):
        with pytest.raises(TupleFormatError):
            Player(io.StringIO("100 1 a\n50 2 a\n"))  # time goes backwards


class TestDynamicReconfiguration:
    def test_period_change_mid_run_keeps_trace_consistent(self):
        loop = MainLoop()
        scope = Scope("s", loop, period_ms=50)
        cell = Cell(1.0)
        scope.signal_new(memory_signal("x", cell))
        scope.start_polling()
        loop.run_for(1000)
        scope.set_period(10)
        loop.run_for(1000)
        times = scope.channel("x").times()
        assert times == sorted(times)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert min(gaps) >= 10 - 1e-9

    def test_delay_shrink_drops_now_late_pushes(self):
        loop, scope, server, client = make_world(delay_ms=500)
        loop.run_for(1000)
        scope.set_delay(10)  # tighten the window drastically
        client.send_sample("m", 5.0, time_ms=loop.clock.now() - 100)
        loop.run_for(300)
        assert scope.buffer.stats.dropped_late >= 1

    def test_remove_and_readd_signal(self):
        loop = MainLoop()
        scope = Scope("s", loop, period_ms=50)
        scope.signal_new(memory_signal("x", Cell(1)))
        scope.start_polling()
        loop.run_for(500)
        scope.signal_remove("x")
        scope.signal_new(memory_signal("x", Cell(99)))
        loop.run_for(500)
        assert scope.value_of("x") == 99.0
        # The new channel starts a fresh trace.
        assert all(v == 99.0 for v in scope.channel("x").raw_values())
