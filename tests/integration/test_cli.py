"""Tests for the `python -m repro` CLI."""

import io
import math

import pytest

from repro.__main__ import main
from repro.core.tuples import Recorder


@pytest.fixture()
def recording(tmp_path):
    path = tmp_path / "capture.tuples"
    with Recorder(str(path)) as rec:
        rec.comment("CLI test capture")
        for i in range(200):
            t = i * 50.0
            rec.record(t, 50 + 40 * math.sin(2 * math.pi * 2.0 * t / 1000.0), "tone")
            rec.record(t, float(i % 4), "saw")
    return str(path)


class TestSummary:
    def test_prints_per_signal_stats(self, recording, capsys):
        assert main(["summary", recording]) == 0
        out = capsys.readouterr().out
        assert "tone:" in out and "saw:" in out
        assert "200 points" in out

    def test_empty_recording_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.tuples"
        empty.write_text("# nothing here\n")
        assert main(["summary", str(empty)]) == 1


class TestPrint:
    def test_ascii_to_stdout(self, recording, capsys):
        assert main(["print", recording]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 10

    def test_ppm_written(self, recording, tmp_path, capsys):
        ppm = str(tmp_path / "out.ppm")
        assert main(["print", recording, "--ppm", ppm]) == 0
        from repro.gui.render import read_ppm

        assert read_ppm(ppm).width == 512

    def test_custom_dimensions(self, recording, tmp_path):
        ppm = str(tmp_path / "small.ppm")
        assert main(
            ["print", recording, "--ppm", ppm, "--width", "128", "--height", "64"]
        ) == 0
        from repro.gui.render import read_ppm

        assert read_ppm(ppm).width == 128


class TestSpectrum:
    def test_named_signal_peak(self, recording, capsys):
        assert main(["spectrum", recording, "--signal", "tone"]) == 0
        out = capsys.readouterr().out
        # 2 Hz tone sampled at 20 Hz.
        assert "peak 2." in out

    def test_ambiguous_signal_requires_flag(self, recording, capsys):
        assert main(["spectrum", recording]) == 2
        assert "--signal" in capsys.readouterr().err

    def test_single_signal_auto_selected(self, tmp_path, capsys):
        path = tmp_path / "solo.tuples"
        with Recorder(str(path), single_signal=True) as rec:
            for i in range(100):
                rec.record(i * 50.0, math.sin(i / 3.0), "x")
        assert main(["spectrum", str(path)]) == 0
        assert "signal:" in capsys.readouterr().out


@pytest.fixture()
def capture_dir(tmp_path):
    import numpy as np

    from repro.capture import CaptureWriter

    path = tmp_path / "run.capture"
    with CaptureWriter(path, segment_samples=256) as writer:
        now = 0.0
        for i in range(20):
            now += 10.0
            times = np.linspace(now - 10.0, now, 25, endpoint=False)
            writer.on_push("cpu", times, np.sin(times / 40.0) * 40 + 50, now)
            writer.on_push("pkts", times, np.arange(25, dtype=float) + 25 * i, now)
    return str(path)


class TestCaptureInfo:
    def test_reports_store_shape(self, capture_dir, capsys):
        assert main(["capture", "info", capture_dir]) == 0
        out = capsys.readouterr().out
        assert "samples:   1000" in out
        assert "cpu: 500 samples" in out
        assert "pkts: 500 samples" in out
        assert "time span:" in out

    def test_invalid_store_fails(self, tmp_path, capsys):
        assert main(["capture", "info", str(tmp_path / "missing")]) == 1
        assert "invalid capture" in capsys.readouterr().err


class TestQuery:
    def test_prints_derived_tuples(self, capture_dir, capsys):
        assert main(
            ["query", "load = ewma(cpu, 0.9)", "--capture", capture_dir,
             "--limit", "3"]
        ) == 0
        captured = capsys.readouterr()
        assert "# load: 500 samples" in captured.err
        lines = captured.out.strip().splitlines()
        assert len(lines) == 3
        assert all(line.endswith(" load") for line in lines)

    def test_export_writes_tuple_text(self, capture_dir, tmp_path, capsys):
        out_file = tmp_path / "derived.tuples"
        assert main(
            ["query", "tput = rate(pkts)", "--capture", capture_dir,
             "--export", str(out_file), "--limit", "0"]
        ) == 0
        text = out_file.read_text()
        assert text.startswith("# query: tput = rate(pkts)")
        # 500 samples -> 499 rate points, one per line after the header
        assert len(text.strip().splitlines()) == 500

    def test_bad_expression_fails(self, capture_dir, capsys):
        assert main(["query", "foo(cpu)", "--capture", capture_dir]) == 2
        assert "unknown function" in capsys.readouterr().err

    def test_missing_signal_fails(self, capture_dir, capsys):
        assert main(["query", "rate(nope)", "--capture", capture_dir]) == 2
        assert "no signal" in capsys.readouterr().err


class TestFaults:
    def test_crash_demo_recovers_byte_identically(self, capsys):
        assert main(["faults", "--duration", "1500", "--at", "600"]) == 0
        out = capsys.readouterr().out
        assert "restarts 1" in out
        assert "byte-identical" in out

    def test_stall_demo_recovers_byte_identically(self, capsys):
        assert main(
            ["faults", "--fault", "stall", "--seed", "5", "--shards", "3",
             "--victim", "1", "--duration", "1500", "--at", "600"]
        ) == 0
        assert "byte-identical" in capsys.readouterr().out


class TestHelpBehaviour:
    def test_no_subcommand_prints_help_and_exits_2(self, capsys):
        assert main([]) == 2
        out = capsys.readouterr().err
        for command in (
            "summary", "print", "spectrum", "capture", "query",
            "faults", "trace", "top",
        ):
            assert command in out

    def test_unknown_subcommand_prints_help_and_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["not-a-command"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "trace" in err and "summary" in err  # full help, not one line


class TestTrace:
    def test_exports_chrome_json(self, tmp_path, capsys):
        import json

        out = tmp_path / "trace.json"
        assert main(["trace", "--out", str(out), "--duration", "300"]) == 0
        payload = json.loads(out.read_text())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert {"ingest", "deliver", "derive", "fanout"} <= names

    def test_stdout_when_no_out(self, capsys):
        import json

        assert main(["trace", "--duration", "200"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["traceEvents"]

    def test_disabled_obs_refused(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert main(["trace", "--duration", "100"]) == 1
        assert "REPRO_OBS" in capsys.readouterr().err


class TestTop:
    def test_prints_instrument_table(self, capsys):
        assert main(["top", "--duration", "500"]) == 0
        out = capsys.readouterr().out
        assert "loop.dispatch.default" in out
        assert "__obs." not in out  # registry names are unprefixed
