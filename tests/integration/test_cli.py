"""Tests for the `python -m repro` CLI."""

import io
import math

import pytest

from repro.__main__ import main
from repro.core.tuples import Recorder


@pytest.fixture()
def recording(tmp_path):
    path = tmp_path / "capture.tuples"
    with Recorder(str(path)) as rec:
        rec.comment("CLI test capture")
        for i in range(200):
            t = i * 50.0
            rec.record(t, 50 + 40 * math.sin(2 * math.pi * 2.0 * t / 1000.0), "tone")
            rec.record(t, float(i % 4), "saw")
    return str(path)


class TestSummary:
    def test_prints_per_signal_stats(self, recording, capsys):
        assert main(["summary", recording]) == 0
        out = capsys.readouterr().out
        assert "tone:" in out and "saw:" in out
        assert "200 points" in out

    def test_empty_recording_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.tuples"
        empty.write_text("# nothing here\n")
        assert main(["summary", str(empty)]) == 1


class TestPrint:
    def test_ascii_to_stdout(self, recording, capsys):
        assert main(["print", recording]) == 0
        out = capsys.readouterr().out
        assert len(out.splitlines()) > 10

    def test_ppm_written(self, recording, tmp_path, capsys):
        ppm = str(tmp_path / "out.ppm")
        assert main(["print", recording, "--ppm", ppm]) == 0
        from repro.gui.render import read_ppm

        assert read_ppm(ppm).width == 512

    def test_custom_dimensions(self, recording, tmp_path):
        ppm = str(tmp_path / "small.ppm")
        assert main(
            ["print", recording, "--ppm", ppm, "--width", "128", "--height", "64"]
        ) == 0
        from repro.gui.render import read_ppm

        assert read_ppm(ppm).width == 128


class TestSpectrum:
    def test_named_signal_peak(self, recording, capsys):
        assert main(["spectrum", recording, "--signal", "tone"]) == 0
        out = capsys.readouterr().out
        # 2 Hz tone sampled at 20 Hz.
        assert "peak 2." in out

    def test_ambiguous_signal_requires_flag(self, recording, capsys):
        assert main(["spectrum", recording]) == 2
        assert "--signal" in capsys.readouterr().err

    def test_single_signal_auto_selected(self, tmp_path, capsys):
        path = tmp_path / "solo.tuples"
        with Recorder(str(path), single_signal=True) as rec:
            for i in range(100):
                rec.record(i * 50.0, math.sin(i / 3.0), "x")
        assert main(["spectrum", str(path)]) == 0
        assert "signal:" in capsys.readouterr().out
