"""Click-through integration: rendered coordinates drive real behaviour.

The Figure 1 interactions are wired through the widget tree's hit
testing, so clicking *pixel coordinates* on the composite widget must
reach the same state changes as the programmatic API — the paper's
GUI/API equivalence, verified from the pixel side.
"""

import pytest

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.eventloop.loop import MainLoop
from repro.gui.scope_widget import ScopeWidget
from repro.gui.widget import MouseButton


@pytest.fixture()
def world():
    loop = MainLoop()
    scope = Scope("clicky", loop, width=300, height=80, period_ms=50)
    scope.signal_new(memory_signal("alpha", Cell(10), min=0, max=100))
    scope.signal_new(memory_signal("beta", Cell(20), min=0, max=100))
    scope.start_polling()
    loop.run_for(500)
    widget = ScopeWidget(scope)
    return loop, scope, widget


def center(rect):
    return rect.x + rect.width // 2, rect.y + rect.height // 2


class TestClickThroughCoordinates:
    def test_left_click_on_name_button_hides_trace(self, world):
        loop, scope, widget = world
        x, y = center(widget._name_buttons["alpha"].rect)
        assert widget.click(x, y, MouseButton.LEFT)
        assert not scope.channel("alpha").visible
        assert scope.channel("beta").visible  # neighbours untouched

    def test_right_click_on_name_button_opens_window(self, world):
        loop, scope, widget = world
        x, y = center(widget._name_buttons["beta"].rect)
        assert widget.click(x, y, MouseButton.RIGHT)
        assert len(widget.open_windows) == 1
        assert widget.open_windows[0].channel.name == "beta"

    def test_click_on_value_button(self, world):
        loop, scope, widget = world
        x, y = center(widget._value_buttons["alpha"].rect)
        assert widget.click(x, y, MouseButton.LEFT)
        assert scope.channel("alpha").show_value

    def test_click_on_zoom_widget_changes_scope_zoom(self, world):
        loop, scope, widget = world
        x, y = center(widget.zoom_widget.rect)
        widget.click(x, y, MouseButton.LEFT)
        assert scope.zoom == 1.25
        widget.click(x, y, MouseButton.RIGHT)
        assert scope.zoom == 1.0

    def test_click_on_empty_canvas_is_unconsumed(self, world):
        loop, scope, widget = world
        # Middle of the trace canvas: no interactive widget lives there.
        x = widget.canvas_rect.x + widget.canvas_rect.width // 2
        y = widget.canvas_rect.y + widget.canvas_rect.height // 2
        assert widget.click(x, y, MouseButton.LEFT) is False

    def test_window_edits_after_click_open_affect_live_channel(self, world):
        loop, scope, widget = world
        x, y = center(widget._name_buttons["alpha"].rect)
        widget.click(x, y, MouseButton.RIGHT)
        window = widget.open_windows[0]
        window.set_filter(0.8)
        assert scope.channel("alpha").filter.alpha == 0.8
        loop.run_for(500)  # polling continues through the new filter
        assert scope.channel("alpha").last_value is not None
