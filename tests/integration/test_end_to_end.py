"""Cross-module integration scenarios.

These tests exercise whole slices of the system the way the paper's
users did: application + scope + loop, remote clients + server + scope,
record on one scope and replay on another, and the full
mxtraf-under-observation pipeline feeding a rendered figure.
"""

import io

import pytest

from repro.core.manager import ScopeManager
from repro.core.scope import Scope
from repro.core.signal import (
    Cell,
    SignalType,
    buffer_signal,
    func_signal,
    memory_signal,
)
from repro.core.tuples import Player, Recorder
from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop
from repro.gui.render import ascii_render
from repro.gui.scope_widget import ScopeWidget
from repro.net import ScopeClient, ScopeServer, memory_pair
from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig


class TestScopeOnCoarseKernel:
    def test_scope_under_10ms_kernel_still_advances_correctly(self):
        """Polling at 25 ms on a 10 ms kernel tick: wakeups land on 30,
        60, 90...; lost-timeout compensation keeps column = time/period."""
        clock = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        loop = MainLoop(clock=clock)
        scope = Scope("coarse", loop, period_ms=25)
        scope.signal_new(memory_signal("x", Cell(1)))
        scope.start_polling()
        loop.run_until(10_000)
        expected_columns = 10_000 / 25
        assert scope.column == pytest.approx(expected_columns, abs=2)


class TestTwoScopesOneApplication:
    def test_same_cell_on_two_scopes_with_different_periods(self):
        loop = MainLoop()
        mgr = ScopeManager(loop)
        fast = mgr.scope_new("fast", period_ms=10)
        slow = mgr.scope_new("slow", period_ms=100)
        shared = Cell(0.0)
        fast.signal_new(memory_signal("v", shared, SignalType.FLOAT))
        slow.signal_new(memory_signal("v", shared, SignalType.FLOAT))
        mgr.start_all()

        def ramp(lost):
            shared.value += 1.0
            return True

        loop.timeout_add(10, ramp)
        loop.run_for(2000)
        assert len(fast.channel("v").trace) > 8 * len(slow.channel("v").trace)
        assert fast.value_of("v") == pytest.approx(slow.value_of("v"), abs=11)


class TestDistributedRoundTrip:
    def test_remote_samples_survive_recording_and_replay(self):
        # Live distributed capture...
        loop = MainLoop()
        mgr = ScopeManager(loop)
        scope = mgr.scope_new("live", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("rtt"))
        scope.set_polling_mode(50)
        scope.start_polling()
        sink = io.StringIO()
        scope.record_to(Recorder(sink))
        server = ScopeServer(loop, mgr)
        near, far = memory_pair(loop.clock, latency_ms=20)
        server.add_client(far)
        client = ScopeClient(near, loop)
        loop.timeout_add(
            25, lambda lost: client.send_sample("rtt", loop.clock.now() % 90) or True
        )
        loop.run_for(3000)
        scope.record_to(None)
        live_values = scope.channel("rtt").raw_values()
        assert len(live_values) > 30

        # ...then offline replay reproduces the displayed data.
        replay_loop = MainLoop()
        replay = Scope("replay", replay_loop, period_ms=50)
        replay.set_playback_mode(Player(io.StringIO(sink.getvalue())))
        replay.start_polling()
        replay_loop.run_for(5000)
        assert replay.channel("rtt").raw_values() == live_values


class TestMxtrafFigurePipeline:
    def test_full_figure_pipeline_renders(self):
        """Engine + mxtraf + scope + widget: the Figure 4 pipeline in
        miniature, asserting on the rendered canvas itself."""
        loop = MainLoop()
        engine = Engine()
        net = Network(
            engine,
            NetworkConfig(
                queue="droptail",
                bandwidth_pkts_per_sec=500,
                prop_delay_ms=10,
                ack_delay_ms=10,
                droptail_capacity=10,
            ),
        )
        mx = Mxtraf(net, MxtrafConfig(elephants=6))
        scope = Scope("fig", loop, width=300, height=80, period_ms=50)
        scope.signal_new(
            memory_signal(
                "elephants", mx.elephants_cell, SignalType.INTEGER,
                min=0, max=40, color="yellow",
            )
        )
        scope.signal_new(
            func_signal("CWND", mx.watched_flow().get_cwnd, min=0, max=40,
                        color="green")
        )
        scope.set_polling_mode(50)
        scope.start_polling()
        loop.timeout_add(50, lambda lost: engine.advance_to(loop.clock.now()) or True)
        loop.timeout_add(5000, lambda lost: mx.set_elephants(12) and False)
        loop.run_until(10_000)

        widget = ScopeWidget(scope)
        canvas = widget.render()
        # Both traces must have painted pixels in their configured colors.
        assert canvas.count_pixels((64, 160, 43)) > 50  # green CWND
        assert canvas.count_pixels((230, 190, 20)) > 50  # yellow elephants
        art = ascii_render(canvas, max_width=80, max_height=20)
        assert art.strip()

    def test_elephants_signal_steps_when_mix_changes(self):
        loop = MainLoop()
        engine = Engine()
        net = Network(engine, NetworkConfig(bandwidth_pkts_per_sec=500))
        mx = Mxtraf(net, MxtrafConfig(elephants=8))
        scope = Scope("s", loop, period_ms=50)
        scope.signal_new(
            memory_signal("elephants", mx.elephants_cell, SignalType.INTEGER)
        )
        scope.start_polling()
        loop.timeout_add(50, lambda lost: engine.advance_to(loop.clock.now()) or True)
        loop.run_for(1000)
        mx.set_elephants(16)
        loop.run_for(1000)
        values = scope.channel("elephants").raw_values()
        assert 8.0 in values and 16.0 in values
        switch = values.index(16.0)
        assert all(v == 8.0 for v in values[:switch])
        assert all(v == 16.0 for v in values[switch:])


class TestFrequencyViewIntegration:
    def test_scope_trace_feeds_spectrum(self):
        import math

        from repro.core.frequency import spectrum

        loop = MainLoop()
        scope = Scope("spec", loop, period_ms=10)
        scope.signal_new(
            func_signal(
                "tone",
                lambda *_: math.sin(2 * math.pi * 8.0 * loop.clock.now() / 1000.0),
                min=-1,
                max=1,
            )
        )
        scope.start_polling()
        loop.run_for(6000)
        spec = spectrum(scope.channel("tone").values(), period_ms=10)
        freq, _ = spec.peak()
        assert freq == pytest.approx(8.0, abs=0.3)
