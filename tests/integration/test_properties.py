"""System-level property tests (hypothesis) on cross-module invariants."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.scope import Scope
from repro.core.signal import Cell, memory_signal
from repro.core.trigger import Edge, Trigger
from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop


class TestScopePollingInvariants:
    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(min_value=1.0, max_value=200.0),  # period
        st.floats(min_value=100.0, max_value=5000.0),  # run duration
    )
    def test_poll_count_matches_elapsed_time(self, period, duration):
        loop = MainLoop()
        scope = Scope("s", loop, period_ms=period)
        scope.signal_new(memory_signal("x", Cell(1)))
        scope.start_polling()
        loop.run_until(duration)
        expected = duration / period
        # Half-open window semantics allow the boundary poll to defer.
        assert abs(scope.polls - expected) <= 1.0 + 1e-6
        times = scope.channel("x").times()
        assert times == sorted(times)
        assert len(set(times)) == len(times)  # strictly increasing

    @settings(deadline=None, max_examples=25)
    @given(
        st.floats(min_value=1.0, max_value=50.0),  # requested period
        st.floats(min_value=1.0, max_value=25.0),  # kernel tick
    )
    def test_column_accounting_is_truthful_under_any_tick(self, period, tick):
        """polls + lost == elapsed/period whatever the kernel tick does
        to the wakeups (the Section 4.5 compensation invariant)."""
        clock = KernelTimerModel(VirtualClock(), tick_ms=tick)
        loop = MainLoop(clock=clock)
        scope = Scope("s", loop, period_ms=period)
        scope.signal_new(memory_signal("x", Cell(1)))
        scope.start_polling()
        duration = 2000.0
        loop.run_until(duration)
        expected_columns = duration / period
        assert scope.column == scope.polls + scope.lost_timeouts
        # The final wakeup of the half-open run window may not have
        # fired yet; it would have advanced up to tick/period columns.
        slack = tick / period + 2.0
        assert abs(scope.column - expected_columns) <= slack

    @settings(deadline=None, max_examples=20)
    @given(st.lists(st.floats(min_value=0, max_value=100), min_size=2, max_size=40))
    def test_displayed_values_equal_application_values(self, values):
        """What the application wrote is exactly what the scope shows
        (no filter, no aggregation — the identity path)."""
        from repro.core.signal import SignalType

        loop = MainLoop()
        scope = Scope("s", loop, period_ms=50)
        cell = Cell(values[0])
        scope.signal_new(memory_signal("x", cell, SignalType.FLOAT))
        scope.start_polling()
        for v in values:
            cell.value = v
            loop.run_for(50)
        raw = scope.channel("x").raw_values()
        # Half-open run windows: the poll at t = 50*i fires at the start
        # of window i+1, after values[i] was written — so the displayed
        # sequence is exactly values[1:] (the final boundary poll never
        # fires inside the loop).
        assert raw == [float(v) for v in values[1:]]


class TestTriggerProperties:
    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=200),
        st.floats(min_value=-5, max_value=5),
        st.integers(min_value=0, max_value=20),
    )
    def test_firings_strictly_increase_and_respect_holdoff(self, values, level, holdoff):
        trigger = Trigger(level, Edge.EITHER, holdoff=holdoff)
        events = trigger.find(values)
        indices = [e.index for e in events]
        assert indices == sorted(indices)
        assert len(set(indices)) == len(indices)
        gaps = [b - a for a, b in zip(indices, indices[1:])]
        assert all(g > holdoff for g in gaps)

    @settings(deadline=None, max_examples=50)
    @given(
        st.lists(st.floats(min_value=-10, max_value=10), min_size=2, max_size=200),
        st.floats(min_value=-5, max_value=5),
    )
    def test_rising_firings_actually_cross_the_level(self, values, level):
        trigger = Trigger(level, Edge.RISING)
        for event in trigger.find(values):
            assert values[event.index] >= level
            assert values[event.index - 1] < level


class TestClockComposition:
    @settings(deadline=None, max_examples=50)
    @given(
        st.floats(min_value=0.1, max_value=100),
        st.floats(min_value=0.1, max_value=100),
        st.floats(min_value=0, max_value=10_000),
    )
    def test_stacked_timer_models_quantise_to_coarsest(self, tick_a, tick_b, deadline):
        """A timer model wrapping another never wakes earlier than
        either quantisation alone."""
        inner = KernelTimerModel(VirtualClock(), tick_ms=tick_a)
        outer = KernelTimerModel(inner, tick_ms=tick_b)
        woken = outer.wakeup_time(deadline)
        assert woken >= deadline - 1e-6
        assert woken >= outer._quantise(deadline) - 1e-6
