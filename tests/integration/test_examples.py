"""Every example script must run to completion and produce its outputs.

Examples are the paper's demos; breaking one silently would hollow out
the reproduction, so each runs in-process (fast — everything is virtual
time except nothing here) inside a temp directory.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = {
    "quickstart": ["quickstart_scope.ppm"],
    "tcp_vs_ecn": ["figure4_tcp.ppm", "figure5_ecn.ppm"],
    "scheduler_scope": ["scheduler_scope.ppm"],
    "pll_scope": ["pll_scope.ppm"],
    "distributed_mxtraf": ["distributed_mxtraf.ppm"],
    "media_player": ["media_player.ppm"],
    "derived_signals": [
        "derived_signals.capture/00000000.gseg",
        "derived_signals.ppm",
    ],
    "record_replay": [
        "recorded_signals.capture/00000000.gseg",
        "recorded_signals.tuples",
        "replay_50ms.ppm",
        "replay_25ms.ppm",
    ],
    "triggered_waveforms": ["triggered_envelope.ppm"],
    "granularity_demo": [
        "granularity_fine.ppm",
        "granularity_coarse.ppm",
        "granularity_loaded.ppm",
    ],
}


def run_example(name, tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(spec.name, None)
    return capsys.readouterr().out


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs_and_writes_outputs(name, tmp_path, monkeypatch, capsys):
    out = run_example(name, tmp_path, monkeypatch, capsys)
    assert out.strip(), f"example {name} printed nothing"
    for artifact in EXAMPLES[name]:
        path = tmp_path / artifact
        assert path.exists(), f"example {name} did not write {artifact}"
        assert path.stat().st_size > 0


def test_tcp_vs_ecn_shows_the_paper_contrast(tmp_path, monkeypatch, capsys):
    """The printed stats must carry Figure 4/5's visual claim."""
    out = run_example("tcp_vs_ecn", tmp_path, monkeypatch, capsys)
    tcp_part, ecn_part = out.split("ECN behavior")
    assert "CWND min=1.0" in tcp_part  # TCP hits the floor
    assert "timeouts=0 " in ecn_part  # ECN never times out

    # The recorded PPM figures decode and are non-trivial.
    from repro.gui.render import read_ppm

    for ppm in ("figure4_tcp.ppm", "figure5_ecn.ppm"):
        canvas = read_ppm(str(tmp_path / ppm))
        assert canvas.width >= 400


def test_quickstart_reaches_final_elephant_count(tmp_path, monkeypatch, capsys):
    out = run_example("quickstart", tmp_path, monkeypatch, capsys)
    assert "final elephants: 32.0" in out
