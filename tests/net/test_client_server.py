"""End-to-end tests for the distributed client/server library (§4.4)."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair, socket_pair


def make_world(delay_ms=100.0, latency_ms=0.0, auto_create=False):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("remote", period_ms=50, delay_ms=delay_ms)
    scope.signal_new(buffer_signal("metric"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager, auto_create=auto_create)
    near, far = memory_pair(loop.clock, latency_ms=latency_ms)
    server.add_client(far)
    client = ScopeClient(near, loop)
    return loop, scope, server, client


class TestHappyPath:
    def test_sample_travels_to_scope(self):
        loop, scope, server, client = make_world()
        client.send_sample("metric", 42.0)
        loop.run_for(300)
        assert scope.value_of("metric") == 42.0
        assert server.totals()["accepted"] == 1

    def test_stream_of_samples(self):
        loop, scope, server, client = make_world()
        loop.timeout_add(
            10, lambda lost: client.send_sample("metric", loop.clock.now()) or True
        )
        loop.run_for(2000)
        channel = scope.channel("metric")
        assert len(channel.trace) > 150
        times = channel.times()
        assert times == sorted(times)

    def test_link_latency_tolerated_within_delay(self):
        """Samples older than the delay on arrival are kept as long as
        transmission latency < display delay."""
        loop, scope, server, client = make_world(delay_ms=100, latency_ms=60)
        client.send_sample("metric", 7.0)
        loop.run_for(400)
        assert scope.value_of("metric") == 7.0
        assert server.totals()["dropped_late"] == 0

    def test_multiple_clients_one_scope(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("a"))
        scope.signal_new(buffer_signal("b"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        clients = []
        for _ in range(2):
            near, far = memory_pair(loop.clock)
            server.add_client(near_id := far)
            clients.append(ScopeClient(near, loop))
        clients[0].send_sample("a", 1.0)
        clients[1].send_sample("b", 2.0)
        loop.run_for(300)
        assert scope.value_of("a") == 1.0
        assert scope.value_of("b") == 2.0


class TestLateDrop:
    def test_latency_beyond_delay_drops(self):
        """Section 4.4: data arriving after the delay is dropped."""
        loop, scope, server, client = make_world(delay_ms=20, latency_ms=80)
        client.send_sample("metric", 9.0)
        loop.run_for(500)
        assert scope.value_of("metric") is None
        assert server.totals()["dropped_late"] == 1

    def test_larger_delay_rescues_slow_links(self):
        loop, scope, server, client = make_world(delay_ms=200, latency_ms=80)
        client.send_sample("metric", 9.0)
        loop.run_for(500)
        assert scope.value_of("metric") == 9.0


class TestProtocolErrors:
    def test_malformed_stream_disconnects_client(self):
        loop, scope, server, client = make_world()
        client.endpoint.send(b"garbage line\n")
        loop.run_for(200)
        state = server.clients[0]
        assert not state.connected
        assert state.protocol_errors == 1

    def test_unknown_signal_counted_not_crashed(self):
        loop, scope, server, client = make_world()
        client.send_sample("ghost", 1.0)
        loop.run_for(200)
        totals = server.totals()
        assert totals["received"] == 1
        assert totals["accepted"] == 0

    def test_auto_create_registers_signal(self):
        loop, scope, server, client = make_world(auto_create=True)
        client.send_sample("surprise", 3.0)
        loop.run_for(300)
        assert "surprise" in scope
        assert scope.value_of("surprise") == 3.0


class TestClientBehaviour:
    def test_backlog_drains(self):
        loop, scope, server, client = make_world()
        for i in range(50):
            client.send_sample("metric", float(i))
        loop.run_for(500)
        assert client.backlog == 0
        assert client.sent == 50

    def test_queue_bound_drops_oldest(self):
        loop = MainLoop()
        near, _far = memory_pair(loop.clock)
        near.closed = False

        class NeverWritable:
            def __init__(self, inner):
                self.inner = inner

            def writable(self):
                return False

            def readable(self):
                return False

            def send(self, data):
                raise AssertionError("should not send")

            def close(self):
                pass

        client = ScopeClient(NeverWritable(near), loop, max_queue=5)
        for i in range(8):
            client.send_sample("m", float(i))
        assert client.backlog == 5
        assert client.dropped == 3

    def test_close_removes_watch(self):
        loop, scope, server, client = make_world()
        client.send_sample("metric", 1.0)
        client.close()
        # Any watches the client registered must be gone or inert.
        loop.run_for(200)


class TestBatchedSend:
    def test_batched_frame_travels_to_scope(self):
        loop, scope, server, client = make_world()
        now = loop.clock.now()
        client.send_samples("metric", [1.0, 2.0, 3.0], times=[now, now + 1, now + 2])
        loop.run_for(300)
        assert server.totals()["accepted"] == 3
        assert scope.channel("metric").raw_values() == [1.0, 2.0, 3.0]

    def test_batched_send_counts_samples(self):
        loop, scope, server, client = make_world()
        client.send_samples("metric", [5.0] * 10)
        loop.run_for(300)
        assert client.sent == 10
        assert client.backlog == 0

    def test_batched_and_scalar_interleave(self):
        loop, scope, server, client = make_world()
        now = loop.clock.now()
        client.send_sample("metric", 1.0, time_ms=now)
        client.send_samples("metric", [2.0, 3.0], times=[now + 1, now + 2])
        client.send_sample("metric", 4.0, time_ms=now + 3)
        loop.run_for(300)
        assert scope.channel("metric").raw_values() == [1.0, 2.0, 3.0, 4.0]
        assert server.totals()["accepted"] == 4

    def test_empty_batch_is_noop(self):
        loop, scope, server, client = make_world()
        client.send_samples("metric", [])
        loop.run_for(100)
        assert client.backlog == 0
        assert client.sent == 0


class TestSocketTransport:
    def test_end_to_end_over_real_sockets(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("metric"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        client_end, server_end = socket_pair()
        try:
            server.add_client(server_end)
            client = ScopeClient(client_end, loop)
            client.send_sample("metric", 13.0, time_ms=loop.clock.now())
            loop.run_for(300)
            assert scope.value_of("metric") == 13.0
        finally:
            client_end.close()
            server_end.close()
