"""End-to-end tests for the distributed client/server library (§4.4)."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair, socket_pair


def make_world(delay_ms=100.0, latency_ms=0.0, auto_create=False):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("remote", period_ms=50, delay_ms=delay_ms)
    scope.signal_new(buffer_signal("metric"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager, auto_create=auto_create)
    near, far = memory_pair(loop.clock, latency_ms=latency_ms)
    server.add_client(far)
    client = ScopeClient(near, loop)
    return loop, scope, server, client


class TestHappyPath:
    def test_sample_travels_to_scope(self):
        loop, scope, server, client = make_world()
        client.send_sample("metric", 42.0)
        loop.run_for(300)
        assert scope.value_of("metric") == 42.0
        assert server.totals()["accepted"] == 1

    def test_stream_of_samples(self):
        loop, scope, server, client = make_world()
        loop.timeout_add(
            10, lambda lost: client.send_sample("metric", loop.clock.now()) or True
        )
        loop.run_for(2000)
        channel = scope.channel("metric")
        assert len(channel.trace) > 150
        times = channel.times()
        assert times == sorted(times)

    def test_link_latency_tolerated_within_delay(self):
        """Samples older than the delay on arrival are kept as long as
        transmission latency < display delay."""
        loop, scope, server, client = make_world(delay_ms=100, latency_ms=60)
        client.send_sample("metric", 7.0)
        loop.run_for(400)
        assert scope.value_of("metric") == 7.0
        assert server.totals()["dropped_late"] == 0

    def test_multiple_clients_one_scope(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("a"))
        scope.signal_new(buffer_signal("b"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        clients = []
        for _ in range(2):
            near, far = memory_pair(loop.clock)
            server.add_client(near_id := far)
            clients.append(ScopeClient(near, loop))
        clients[0].send_sample("a", 1.0)
        clients[1].send_sample("b", 2.0)
        loop.run_for(300)
        assert scope.value_of("a") == 1.0
        assert scope.value_of("b") == 2.0


class TestLateDrop:
    def test_latency_beyond_delay_drops(self):
        """Section 4.4: data arriving after the delay is dropped."""
        loop, scope, server, client = make_world(delay_ms=20, latency_ms=80)
        client.send_sample("metric", 9.0)
        loop.run_for(500)
        assert scope.value_of("metric") is None
        assert server.totals()["dropped_late"] == 1

    def test_larger_delay_rescues_slow_links(self):
        loop, scope, server, client = make_world(delay_ms=200, latency_ms=80)
        client.send_sample("metric", 9.0)
        loop.run_for(500)
        assert scope.value_of("metric") == 9.0


class TestProtocolErrors:
    def test_malformed_stream_disconnects_client(self):
        loop, scope, server, client = make_world()
        state = server.clients[0]
        client.endpoint.send(b"garbage line\n")
        loop.run_for(200)
        # The dead session is pruned from the live list, its counters
        # folded into the retained totals.
        assert not state.connected
        assert server.clients == []
        assert server.retired_clients == 1
        assert server.totals()["protocol_errors"] == 1

    def test_unknown_signal_counted_not_crashed(self):
        loop, scope, server, client = make_world()
        client.send_sample("ghost", 1.0)
        loop.run_for(200)
        totals = server.totals()
        assert totals["received"] == 1
        assert totals["accepted"] == 0

    def test_auto_create_registers_signal(self):
        loop, scope, server, client = make_world(auto_create=True)
        client.send_sample("surprise", 3.0)
        loop.run_for(300)
        assert "surprise" in scope
        assert scope.value_of("surprise") == 3.0


class TestClientBehaviour:
    def test_backlog_drains(self):
        loop, scope, server, client = make_world()
        for i in range(50):
            client.send_sample("metric", float(i))
        loop.run_for(500)
        assert client.backlog == 0
        assert client.sent == 50

    def test_queue_bound_drops_oldest(self):
        loop = MainLoop()
        near, _far = memory_pair(loop.clock)
        near.closed = False

        class NeverWritable:
            def __init__(self, inner):
                self.inner = inner

            def writable(self):
                return False

            def readable(self):
                return False

            def send(self, data):
                raise AssertionError("should not send")

            def close(self):
                pass

        client = ScopeClient(NeverWritable(near), loop, max_queue=5)
        for i in range(8):
            client.send_sample("m", float(i))
        assert client.backlog == 5
        assert client.dropped == 3

    def test_close_removes_watch(self):
        loop, scope, server, client = make_world()
        client.send_sample("metric", 1.0)
        client.close()
        # Any watches the client registered must be gone or inert.
        loop.run_for(200)


class TestBatchedSend:
    def test_batched_frame_travels_to_scope(self):
        loop, scope, server, client = make_world()
        now = loop.clock.now()
        client.send_samples("metric", [1.0, 2.0, 3.0], times=[now, now + 1, now + 2])
        loop.run_for(300)
        assert server.totals()["accepted"] == 3
        assert scope.channel("metric").raw_values() == [1.0, 2.0, 3.0]

    def test_batched_send_counts_samples(self):
        loop, scope, server, client = make_world()
        client.send_samples("metric", [5.0] * 10)
        loop.run_for(300)
        assert client.sent == 10
        assert client.backlog == 0

    def test_batched_and_scalar_interleave(self):
        loop, scope, server, client = make_world()
        now = loop.clock.now()
        client.send_sample("metric", 1.0, time_ms=now)
        client.send_samples("metric", [2.0, 3.0], times=[now + 1, now + 2])
        client.send_sample("metric", 4.0, time_ms=now + 3)
        loop.run_for(300)
        assert scope.channel("metric").raw_values() == [1.0, 2.0, 3.0, 4.0]
        assert server.totals()["accepted"] == 4

    def test_empty_batch_is_noop(self):
        loop, scope, server, client = make_world()
        client.send_samples("metric", [])
        loop.run_for(100)
        assert client.backlog == 0
        assert client.sent == 0


class TestSocketTransport:
    def test_end_to_end_over_real_sockets(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("metric"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        client_end, server_end = socket_pair()
        try:
            server.add_client(server_end)
            client = ScopeClient(client_end, loop)
            client.send_sample("metric", 13.0, time_ms=loop.clock.now())
            loop.run_for(300)
            assert scope.value_of("metric") == 13.0
        finally:
            client_end.close()
            server_end.close()

    def test_binary_batch_over_real_sockets(self):
        """Full binary path — hello, name interning, columnar frames —
        across an actual non-blocking socketpair."""
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=10_000)
        scope.signal_new(buffer_signal("metric"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        client_end, server_end = socket_pair()
        try:
            server.add_client(server_end)
            client = ScopeClient(client_end, loop, mode="binary")
            now = loop.clock.now()
            total = 5000
            values = [float(i) for i in range(total)]
            times = [now + i * 0.01 for i in range(total)]
            client.send_samples("metric", values, times=times)
            for _ in range(50):
                loop.run_for(50)
                if server.totals()["received"] >= total:
                    break
            totals = server.totals()
            assert totals["received"] == total
            assert totals["accepted"] == total
            assert server.clients[0].mode == "binary"
            assert client.sent == total
        finally:
            client_end.close()
            server_end.close()


class TestBinaryWire:
    def test_default_mode_is_binary(self):
        loop, scope, server, client = make_world()
        assert client.mode == "binary"
        client.send_sample("metric", 42.0)
        loop.run_for(300)
        assert server.clients[0].mode == "binary"
        assert scope.value_of("metric") == 42.0

    def test_text_mode_negotiates_fallback(self):
        """An old-style text client keeps working against the same server."""
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("metric"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        client = ScopeClient(near, loop, mode="text")
        client.send_sample("metric", 9.5)
        loop.run_for(300)
        assert server.clients[0].mode == "text"
        assert scope.value_of("metric") == 9.5

    def test_mixed_mode_clients_one_server(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal("a"))
        scope.signal_new(buffer_signal("b"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        clients = []
        for mode in ("binary", "text"):
            near, far = memory_pair(loop.clock)
            server.add_client(far)
            clients.append(ScopeClient(near, loop, mode=mode))
        clients[0].send_sample("a", 1.0)
        clients[1].send_sample("b", 2.0)
        loop.run_for(300)
        assert [c.mode for c in server.clients] == ["binary", "text"]
        assert scope.value_of("a") == 1.0
        assert scope.value_of("b") == 2.0

    def test_ndarray_columns_travel_without_conversion(self):
        import numpy as np

        loop, scope, server, client = make_world(delay_ms=10_000)
        now = loop.clock.now()
        times = now + np.arange(100.0)
        values = np.sqrt(np.arange(100.0))
        client.send_samples("metric", values, times=times)
        loop.run_for(500)
        assert server.totals()["accepted"] == 100
        loop.run_for(11_000)  # past the display delay: samples drain
        assert scope.channel("metric").raw_values()[:3] == [0.0, 1.0, pytest.approx(2**0.5)]

    def test_malformed_binary_header_disconnects(self):
        loop, scope, server, client = make_world()
        # Starts with the binary magic byte, then garbage.
        client.endpoint.send(b"\xa5" + b"\x00" * 20)
        loop.run_for(200)
        assert server.clients == []
        assert server.totals()["protocol_errors"] == 1

    def test_samples_before_name_def_disconnect(self):
        from repro.net.protocol import encode_binary_samples

        loop, scope, server, client = make_world()
        client.endpoint.send(encode_binary_samples(5, [1.0], [2.0]))
        loop.run_for(200)
        assert server.clients == []
        assert server.totals()["protocol_errors"] == 1

    def test_empty_binary_batch_is_noop(self):
        import numpy as np

        loop, scope, server, client = make_world()
        client.send_samples("metric", np.empty(0))
        loop.run_for(100)
        assert client.backlog == 0
        assert client.sent == 0
        # No control traffic either: the name was never used on the wire.
        assert server.totals()["frames"] == 0

    def test_control_frames_never_interleave_partial_data(self):
        """A NAME_DEF queued while a data frame is half-transmitted must
        wait for the frame to finish — landing mid-frame would
        desynchronise the binary stream (real sockets short-write)."""
        import numpy as np

        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100_000)
        scope.signal_new(buffer_signal("a"))
        scope.signal_new(buffer_signal("b"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)

        class Trickle:
            """Endpoint that short-writes: at most 7 bytes per send."""

            def __init__(self, inner):
                self.inner = inner

            def writable(self):
                return self.inner.writable()

            def readable(self):
                return self.inner.readable()

            def send(self, data):
                return self.inner.send(data[:7])

            def close(self):
                self.inner.close()

        client = ScopeClient(Trickle(near), loop, mode="binary")
        now = loop.clock.now()
        # Large frame for 'a': guaranteed mid-frame when 'b' is interned
        # below (its NAME_DEF enters the control queue while 'a' data is
        # partially transmitted).
        client.send_samples("a", np.arange(100.0), times=np.full(100, now))
        client.send_sample("b", 5.0, time_ms=now)
        loop.run_for(2000)
        totals = server.totals()
        assert totals["protocol_errors"] == 0
        assert totals["accepted"] == 101
        assert server.clients[0].connected
        assert client.sent == 101

    def test_name_defs_survive_queue_pressure(self):
        """Back-pressure drops data frames but never NAME_DEFs — every
        surviving frame must still decode against a defined id."""
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100_000)
        for sig in ("a", "b", "c"):
            scope.signal_new(buffer_signal(sig))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)

        class Gate:
            """Endpoint wrapper whose writability can be toggled."""

            def __init__(self, inner):
                self.inner = inner
                self.open = False

            def writable(self):
                return self.open and self.inner.writable()

            def readable(self):
                return self.inner.readable()

            def send(self, data):
                return self.inner.send(data)

            def close(self):
                self.inner.close()

        gate = Gate(near)
        client = ScopeClient(gate, loop, max_queue=2, mode="binary")
        now = loop.clock.now()
        # Nine data frames across three names while unwritable: seven of
        # the data frames drop, all three NAME_DEFs must survive.
        for i in range(9):
            client.send_sample("abc"[i % 3], float(i), time_ms=now)
        assert client.backlog == 2
        assert client.dropped == 7
        gate.open = True
        loop.run_for(300)
        totals = server.totals()
        assert totals["protocol_errors"] == 0
        assert totals["accepted"] == 2
        assert server.clients[0].connected
