"""Tests for the sharded fan-in layer (`repro.net.shard`)."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.scope import ScopeError
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, ShardedScopeManager, memory_pair, shard_of


class TestRouting:
    def test_hash_is_stable_and_process_independent(self):
        # BLAKE2 ring, not Python's salted hash: same name → same shard
        # on every run and every host.  Golden assignments are frozen
        # here so an accidental change to the ring hash or replica
        # layout (which would silently remap every recorded namespace)
        # fails loudly.
        golden = {"throughput": 1, "latency": 3, "cpu": 3, "mem": 2, "disk": 1}
        assert {name: shard_of(name, 4) for name in golden} == golden

    def test_all_shards_reachable(self):
        hits = {shard_of(f"sig{i}", 4) for i in range(200)}
        assert hits == {0, 1, 2, 3}

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_of("x", 0)

    def test_scope_placed_on_home_shard(self):
        sharded = ShardedScopeManager(shards=4)
        scope = sharded.scope_new("alpha", period_ms=50)
        home = sharded.shard_of("alpha")
        assert scope in sharded.managers[home].scopes
        assert "alpha" in sharded
        assert len(sharded) == 1

    def test_explicit_shard_override(self):
        sharded = ShardedScopeManager(shards=4)
        sharded.scope_new("alpha", shard=2, period_ms=50)
        assert "alpha" in sharded.managers[2]

    def test_scope_lookup_searches_all_shards(self):
        sharded = ShardedScopeManager(shards=3)
        sharded.scope_new("a", period_ms=50)
        sharded.scope_new("b", period_ms=50)
        assert sharded.scope("a").name == "a"
        with pytest.raises(ScopeError):
            sharded.scope("ghost")

    def test_scope_remove(self):
        sharded = ShardedScopeManager(shards=3)
        sharded.scope_new("a", period_ms=50)
        sharded.scope_remove("a")
        assert "a" not in sharded
        with pytest.raises(ScopeError):
            sharded.scope_remove("a")


class TestPushRouting:
    def make_sharded(self, shards=4, delay_ms=100_000.0):
        loop = MainLoop()
        sharded = ShardedScopeManager(shards=shards, loop=loop)
        return loop, sharded

    def test_push_lands_on_home_shard_scope(self):
        loop, sharded = self.make_sharded()
        name = "metric"
        home = sharded.shard_of(name)
        scope = sharded.scope_new("display", shard=home, period_ms=50, delay_ms=1000)
        scope.signal_new(buffer_signal(name))
        now = loop.clock.now()
        accepted = sharded.push_samples(name, [now, now], [1.0, 2.0])
        assert accepted == 2
        assert len(scope.buffer) == 2

    def test_foreign_shard_scope_does_not_receive(self):
        loop, sharded = self.make_sharded()
        name = "metric"
        foreign = (sharded.shard_of(name) + 1) % sharded.n_shards
        scope = sharded.scope_new("display", shard=foreign, period_ms=50, delay_ms=1000)
        scope.signal_new(buffer_signal(name))
        accepted = sharded.push_samples(name, [loop.clock.now()], [1.0])
        assert accepted == 0  # home shard has no carrier; by-design partition
        assert len(scope.buffer) == 0

    def test_backpressure_counters_track_late_drops(self):
        loop, sharded = self.make_sharded()
        name = "metric"
        home = sharded.shard_of(name)
        scope = sharded.scope_new("display", shard=home, period_ms=50, delay_ms=100)
        scope.signal_new(buffer_signal(name))
        now = loop.clock.now() + 1000.0
        self_advance = loop.run_for(1000)  # advance clock so stale stamps are late
        sharded.push_samples(name, [now - 900.0, now, now], [1.0, 2.0, 3.0])
        stats = sharded.shard_stats()[home]
        assert stats.offered == 3
        assert stats.accepted == 2
        assert stats.dropped_late == 1
        totals = sharded.totals()
        assert totals == {
            "offered": 3,
            "accepted": 2,
            "dropped_late": 1,
            "tap_bytes": 0,
            "wal_bytes": 0,
            "query_quarantines": 0,
        }

    def test_scalar_push_counted_too(self):
        loop, sharded = self.make_sharded()
        name = "m"
        home = sharded.shard_of(name)
        scope = sharded.scope_new("d", shard=home, period_ms=50, delay_ms=1000)
        scope.signal_new(buffer_signal(name))
        sharded.push_sample(name, loop.clock.now(), 5.0)
        assert sharded.totals()["accepted"] == 1


class TestManagerProtocol:
    def test_topology_version_bumps_on_any_shard_change(self):
        sharded = ShardedScopeManager(shards=3)
        v0 = sharded.topology_version
        sharded.scope_new("a", period_ms=50)
        v1 = sharded.topology_version
        assert v1 != v0
        sharded.scope_remove("a")
        assert sharded.topology_version != v1

    def test_carries_and_auto_create_use_home_shard(self):
        sharded = ShardedScopeManager(shards=4)
        name = "metric"
        home = sharded.shard_of(name)
        sharded.scope_new("display", shard=home, period_ms=50)
        assert not sharded.carries(name)
        assert sharded.auto_create(name)
        assert sharded.carries(name)

    def test_auto_create_without_scope_fails_gracefully(self):
        sharded = ShardedScopeManager(shards=4)
        assert not sharded.auto_create("metric")


class TestServerIntegration:
    def test_server_fans_into_sharded_manager(self):
        """A ScopeServer pointed at a ShardedScopeManager routes remote
        binary streams to per-shard scopes, with auto-create placing
        unknown signals on their home shard."""
        loop = MainLoop()
        sharded = ShardedScopeManager(shards=4, loop=loop)
        # One scope per shard so every signal has a local carrier.
        for i in range(4):
            sharded.scope_new(f"shard{i}", shard=i, period_ms=50, delay_ms=1000)
        sharded.start_all()
        server = ScopeServer(loop, sharded, auto_create=True)
        near, far = memory_pair(loop.clock)
        server.add_client(near_id := far)
        client = ScopeClient(near, loop, mode="binary")
        names = [f"signal{i}" for i in range(12)]
        for name in names:
            client.send_samples(name, [1.0, 2.0, 3.0])
        loop.run_for(300)
        totals = server.totals()
        assert totals["received"] == 36
        assert totals["accepted"] == 36
        # Every signal was created on its home shard.
        for name in names:
            home = sharded.shard_of(name)
            assert name in sharded.managers[home].scopes[0]
        # Multiple shards actually exercised.
        exercised = {sharded.shard_of(n) for n in names}
        assert len(exercised) > 1
        assert sharded.totals()["accepted"] == 36

    def test_per_shard_loops(self):
        loops = [MainLoop() for _ in range(2)]
        sharded = ShardedScopeManager(shards=2, loops=loops)
        assert sharded.loops == loops
        sharded.scope_new("a", shard=0, period_ms=50)
        sharded.scope_new("b", shard=1, period_ms=50)
        sharded.run_for(200)
        assert all(l.clock.now() >= 200 for l in loops)

    def test_loop_xor_loops(self):
        with pytest.raises(ValueError):
            ShardedScopeManager(shards=2, loop=MainLoop(), loops=[MainLoop(), MainLoop()])
        with pytest.raises(ValueError):
            ShardedScopeManager(shards=2, loops=[MainLoop()])
