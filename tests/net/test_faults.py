"""Unit tests for the deterministic fault-injection harness."""

import pytest

from repro.eventloop.clock import VirtualClock
from repro.net.faults import FaultPlan, FaultyLink, faulty_pair
from repro.net.transport import TransportClosed

pytestmark = pytest.mark.faults


def make_link(plan, delay_ms=0.0):
    clock = VirtualClock()
    return clock, FaultyLink(clock, plan, delay_ms)


def drain(link):
    out = b""
    while link.readable():
        out += link.recv()
    return out


class TestPlanDsl:
    def test_chaining_returns_self(self):
        plan = FaultPlan(seed=7).partition(10, 20).stall(30, 40).drop_next(50)
        assert isinstance(plan, FaultPlan)

    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().partition(20, 10)
        with pytest.raises(ValueError):
            FaultPlan().stall(5, 5)
        with pytest.raises(ValueError):
            FaultPlan().drop_next(0, count=0)

    def test_double_kill_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().kill(10).kill(20)

    def test_seeded_rng_is_replayable(self):
        a = FaultPlan(seed=42)
        b = FaultPlan(seed=42)
        assert [a.rng().random() for _ in range(5)] == [
            b.rng().random() for _ in range(5)
        ]


class TestFaultyLink:
    def test_clean_plan_is_transparent(self):
        clock, link = make_link(FaultPlan())
        link.send(b"hello")
        link.send(b"world")
        assert drain(link) == b"helloworld"
        assert link.dropped_chunks == 0

    def test_partition_drops_chunks_inside_window(self):
        clock, link = make_link(FaultPlan().partition(100, 200))
        link.send(b"before")
        clock.wait_until(150)
        link.send(b"during")
        clock.wait_until(200)
        link.send(b"after")
        assert drain(link) == b"beforeafter"
        assert link.dropped_chunks == 1
        assert link.dropped_bytes == len(b"during")

    def test_stall_holds_and_releases_in_order(self):
        clock, link = make_link(FaultPlan().stall(100, 300))
        clock.wait_until(120)
        link.send(b"one")
        link.send(b"two")
        assert drain(link) == b""  # held
        assert link.stalled_chunks == 2
        clock.wait_until(300)
        assert drain(link) == b"onetwo"  # released, order preserved

    def test_drop_next_consumes_counted_chunks(self):
        clock, link = make_link(FaultPlan().drop_next(at=0, count=2))
        link.send(b"a")
        link.send(b"b")
        link.send(b"c")
        assert drain(link) == b"c"
        assert link.dropped_chunks == 2

    def test_corrupt_flips_exactly_one_byte(self):
        clock, link = make_link(FaultPlan(seed=5).corrupt_next(at=0))
        payload = bytes(range(32))
        link.send(payload)
        got = drain(link)
        assert len(got) == len(payload)
        diff = [i for i in range(len(payload)) if got[i] != payload[i]]
        assert len(diff) == 1
        assert got[diff[0]] == payload[diff[0]] ^ 0xFF
        assert link.corrupted_chunks == 1

    def test_corrupt_position_is_seed_deterministic(self):
        payload = bytes(100)

        def corrupted_index(seed):
            _, link = make_link(FaultPlan(seed=seed).corrupt_next(at=0))
            link.send(payload)
            got = drain(link)
            return next(i for i in range(100) if got[i] != payload[i])

        assert corrupted_index(9) == corrupted_index(9)

    def test_reorder_swaps_adjacent_chunks(self):
        clock, link = make_link(FaultPlan().reorder_next(at=0))
        link.send(b"first")
        link.send(b"second")
        assert drain(link) == b"secondfirst"
        assert link.reordered_chunks == 1

    def test_kill_severs_permanently(self):
        clock, link = make_link(FaultPlan().kill(at=500))
        link.send(b"ok")
        clock.wait_until(500)
        with pytest.raises(TransportClosed):
            link.send(b"too late")
        assert link.closed

    def test_kill_drops_chunks_still_stalled(self):
        clock, link = make_link(FaultPlan().stall(100, 900).kill(at=500))
        clock.wait_until(150)
        link.send(b"held")
        clock.wait_until(500)
        assert not link.readable()  # the held chunk died with the link
        assert link.dropped_chunks == 1
        assert link.dropped_bytes == len(b"held")

    def test_latest_declared_window_wins_on_overlap(self):
        clock, link = make_link(FaultPlan().partition(0, 100).stall(50, 100))
        clock.wait_until(60)
        link.send(b"x")  # stall declared later: held, not dropped
        assert link.stalled_chunks == 1
        clock.wait_until(100)
        assert drain(link) == b"x"


class TestFaultyPair:
    def test_directional_plans(self):
        clock = VirtualClock()
        a, b, a_link, b_link = faulty_pair(
            clock, client_plan=FaultPlan().drop_next(at=0)
        )
        a.send(b"lost")
        a.send(b"kept")
        assert b.recv() == b"kept"
        b.send(b"reply")
        assert a.recv() == b"reply"  # reverse direction is clean
        assert a_link.dropped_chunks == 1
        assert b_link.dropped_chunks == 0

    def test_kill_is_visible_as_peer_closed(self):
        clock = VirtualClock()
        a, b, a_link, _ = faulty_pair(clock, client_plan=FaultPlan().kill(at=100))
        a.send(b"x")
        clock.wait_until(100)
        a_link._sync()
        assert a.peer_closed
        assert b.peer_closed

    def test_same_plan_same_traffic_same_bytes(self):
        def run():
            clock = VirtualClock()
            plan = FaultPlan(seed=3).drop_next(at=20, count=1).corrupt_next(at=60)
            link = FaultyLink(clock, plan)
            out = b""
            for step in range(10):
                clock.wait_until(step * 10.0)
                link.send(bytes([step]) * 8)
                out += drain(link)
            return out

        assert run() == run()
