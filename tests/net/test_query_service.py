"""Continuous-query service: server-side compiled plans over the wire.

The QUERY channel ships query text to the server, which compiles it and
attaches one shared :class:`~repro.query.live.LiveQuery` per *canonical
plan* — N subscribers of the same derived view cost one evaluation plus
fan-out.  These tests pin the three load-bearing claims:

1. server-side derivation is **byte-identical** to batch execution over
   a capture of the same offered stream (8 randomized seeds);
2. subscriptions are multiplexed — same plan (however spelled) shares
   one evaluation, refcounted detach without replay, quarantine and
   compile failures reported in-band;
3. a killed session re-establishes its subscriptions on reconnect with
   **no duplicated derived samples** (the failover-equivalence story
   extended to the query plane).
"""

import numpy as np
import pytest

from repro.capture.reader import CaptureReader
from repro.capture.writer import CaptureWriter
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair
from repro.net.faults import FaultPlan, faulty_pair
from repro.net.protocol import encode_hello, encode_query
from repro.query import compile_query, execute

SEEDS = range(8)

PROGRAM = """
diff = a - 0.5*b
smooth = ewma(a, 0.7)
load = sum_over(b, 25)
grid = resample(a, 10)
band = clip(min(a, b), -1.5, 1.5)
"""

SIGNALS = ("a", "b")


def make_rig(sources=SIGNALS, latency_ms=0.0):
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("rig", delay_ms=1e12)
    for name in sources:
        scope.signal_new(buffer_signal(name))
    server = ScopeServer(loop, manager)

    def connect():
        near, far = memory_pair(loop.clock, latency_ms=latency_ms)
        server.add_client(far)
        return near

    return loop, manager, server, connect


def make_streams(rng, n_per_signal, t0=0.0):
    streams = {}
    for name in SIGNALS:
        gaps = rng.uniform(0.05, 4.0, n_per_signal)
        times = t0 + np.cumsum(gaps) + rng.uniform(0, 2.0)
        values = rng.standard_normal(n_per_signal)
        streams[name] = (times, values)
    return streams


def feed_jittered(rng, streams, push):
    """Interleave signals in randomly sized batches through ``push``."""
    cursors = {name: 0 for name in streams}
    while any(cursors[n] < streams[n][0].shape[0] for n in streams):
        name = SIGNALS[int(rng.integers(len(SIGNALS)))]
        times, values = streams[name]
        cursor = cursors[name]
        if cursor >= times.shape[0]:
            continue
        n = int(rng.integers(1, 9))
        push(name, times[cursor : cursor + n], values[cursor : cursor + n])
        cursors[name] = cursor + n


# ----------------------------------------------------------------------
# 1. Byte-equivalence: wire-subscribed derivation vs batch-over-capture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_server_side_derivation_matches_batch(tmp_path, seed):
    rng = np.random.default_rng(seed)
    plan = compile_query(PROGRAM)
    streams = make_streams(rng, n_per_signal=300)

    loop, manager, server, connect = make_rig()
    # The writer taps ahead of the query, so the capture records the raw
    # offered stream (and, after it, the derived feedback — which batch
    # execution ignores: it reads only the plan's sources).
    writer = CaptureWriter(tmp_path / "store", segment_samples=512)
    manager.add_tap(writer)

    client = ScopeClient(connect(), loop)
    sub = client.subscribe(PROGRAM)
    loop.run_for(20)
    assert sub.subscribed and sub.error is None

    feed_jittered(
        rng,
        streams,
        lambda name, t, v: client.send_samples(name, v, t),
    )
    loop.run_for(200)
    # Batch execution flushes watermarked tails and open windows at
    # end-of-stream; mirror that by finishing the server-side shared
    # evaluation — the tails fan out through the same subscriber path.
    server.queries.shared_queries()[0].live.finish()
    loop.run_for(100)
    writer.close()

    with CaptureReader(tmp_path / "store") as reader:
        batch = execute(reader, plan)
    assert set(sub.output_names) == set(batch)
    total = 0
    for name in sub.output_names:
        lt, lv = sub.columns(name)
        rt, rv = batch[name]
        assert lt.tobytes() == rt.tobytes(), f"{name}: times differ"
        assert lv.tobytes() == rv.tobytes(), f"{name}: values differ"
        total += lt.shape[0]
    assert total > 0  # the run actually derived something
    assert sub.stale_dropped == 0  # clean link: nothing deduplicated


# ----------------------------------------------------------------------
# 2. Multiplexing: shared evaluation, refcount, in-band failures
# ----------------------------------------------------------------------
class TestSharedEvaluation:
    def test_same_plan_different_spelling_shares_one_evaluation(self):
        loop, manager, server, connect = make_rig()
        c1 = ScopeClient(connect(), loop)
        c2 = ScopeClient(connect(), loop)
        s1 = c1.subscribe("smooth = ewma(a, $al)", params={"al": 0.9})
        s2 = c2.subscribe("smooth   = ewma(a,   0.9)  # same plan")
        loop.run_for(20)
        assert s1.subscribed and s2.subscribed
        shared = server.queries.shared_queries()
        assert len(shared) == 1
        assert shared[0].refcount == 2
        assert server.queries.stats()["queries_compiled"] == 2

        t = np.arange(40, dtype=np.float64)
        c1.send_samples("a", np.sqrt(t + 1.0), t)
        loop.run_for(100)
        lt, lv = s1.columns("smooth")
        rt, rv = s2.columns("smooth")
        assert lt.tobytes() == rt.tobytes() and lv.tobytes() == rv.tobytes()
        assert lt.shape[0] == 40

    def test_different_param_values_are_separate_evaluations(self):
        loop, manager, server, connect = make_rig()
        client = ScopeClient(connect(), loop)
        client.subscribe("s = ewma(a, $al)", params={"al": 0.9})
        client.subscribe("s = ewma(a, $al)", params={"al": 0.5})
        loop.run_for(20)
        assert len(server.queries.shared_queries()) == 2

    def test_last_unsubscribe_detaches_without_replay(self):
        loop, manager, server, connect = make_rig()
        c1 = ScopeClient(connect(), loop)
        c2 = ScopeClient(connect(), loop)
        s1 = c1.subscribe("s = ewma(a, 0.9)")
        s2 = c2.subscribe("s = ewma(a, 0.9)")
        loop.run_for(20)
        t = np.arange(10, dtype=np.float64)
        c1.send_samples("a", t * 2.0, t)
        loop.run_for(50)
        assert s1.received == 10 and s2.received == 10

        s1.unsubscribe()
        loop.run_for(20)
        assert server.queries.shared_queries()[0].refcount == 1
        s2.unsubscribe()
        loop.run_for(20)
        assert server.queries.stats()["active_queries"] == 0

        # A fresh subscriber sees only *new* input — no replay of the
        # first 10 samples through a re-attached evaluation.
        s3 = c1.subscribe("s = ewma(a, 0.9)")
        loop.run_for(20)
        c1.send_samples("a", [1.0], [100.0])
        loop.run_for(50)
        t3, _ = s3.columns("s")
        assert t3.tolist() == [100.0]

    def test_disconnect_drops_subscriptions(self):
        loop, manager, server, connect = make_rig()
        c1 = ScopeClient(connect(), loop)
        c1.subscribe("s = ewma(a, 0.9)")
        loop.run_for(20)
        assert server.queries.stats()["subscribers"] == 1
        server.disconnect(server.clients[0])
        assert server.queries.stats()["subscribers"] == 0
        assert server.queries.stats()["active_queries"] == 0


class TestFailures:
    def test_compile_error_replies_in_band_and_keeps_session(self):
        loop, manager, server, connect = make_rig()
        near = connect()
        near.send(
            encode_hello(2)
            + encode_query({"op": "query", "id": "q0", "text": "x = nosuchfn(a)"})
        )
        loop.run_for(20)
        assert len(server.clients) == 1  # bad query != bad session
        assert server.queries.stats()["compile_errors"] == 1
        from repro.net.protocol import FrameDecoder

        replies = []
        decoder = FrameDecoder()
        while near.readable():
            replies.extend(decoder.feed(near.recv()))
        errors = [f for f in replies if f.control and f.control.get("op") == "error"]
        assert errors and errors[0].control["id"] == "q0"

    def test_malformed_query_payload_disconnects(self):
        loop, manager, server, connect = make_rig()
        near = connect()
        near.send(encode_hello(2) + encode_query({"op": "bogus-op", "id": "q0"}))
        loop.run_for(20)
        assert len(server.clients) == 0
        assert server.disconnect_reasons.get("protocol") == 1

    def test_quarantine_notifies_subscribers_and_clears(self):
        loop, manager, server, connect = make_rig()
        client = ScopeClient(connect(), loop)
        sub = client.subscribe("d = ewma(a / b, 0.9)")
        loop.run_for(20)
        assert sub.subscribed
        client.send_samples("a", [1.0, 1.0], [0.0, 1.0])
        # b = 0 makes a/b infinite; ewma rejects it server-side — the
        # shared evaluation quarantines and every subscriber hears why.
        client.send_samples("b", [1.0, 0.0], [0.0, 1.0])
        loop.run_for(50)
        assert sub.error is not None
        assert not sub.active
        stats = server.queries.stats()
        assert stats["quarantined"] == 1
        assert stats["active_queries"] == 0
        assert len(server.clients) == 1  # the session itself survives


# ----------------------------------------------------------------------
# 3. Reconnect: subscriptions survive a killed session, no duplicates
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_subscription_survives_session_kill(seed):
    loop, manager, server, connect_clean = make_rig()
    plans = iter(
        [FaultPlan(seed=seed).kill(at=400.0 + 40.0 * seed)]
    )

    def connect():
        plan = next(plans, None)
        if plan is None:
            return connect_clean()
        near, far, _, _ = faulty_pair(loop.clock, client_plan=plan)
        server.add_client(far)
        return near

    client = ScopeClient(
        connect(),
        loop,
        connect=connect,
        backoff_base_ms=20.0,
        backoff_seed=seed,
    )
    sub = client.subscribe("smooth = ewma(a, 0.8); hot = a > 0.5")

    i = [0]

    def feed(_lost):
        now = float(loop.clock.now())
        client.send_samples("a", [float(np.sin(i[0] / 9.0))], [now])
        i[0] += 1
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(2000.0)

    assert client.reconnects >= 1
    assert sub.subscribed and sub.error is None
    # The fresh session re-issued QUERY+SUBSCRIBE: two compiles total.
    assert server.queries.stats()["queries_compiled"] >= 2
    # No duplicated derived samples: strictly increasing times per
    # output, and the stream kept flowing after the kill.
    for name in sub.output_names:
        times, _ = sub.columns(name)
        assert times.shape[0] > 100
        assert bool((np.diff(times) > 0).all()), f"{name}: duplicated rows"


# ----------------------------------------------------------------------
# 4. Process plane: query attach/detach over the worker control channel
# ----------------------------------------------------------------------
class TestProcessPlane:
    def test_worker_query_attach_detach_and_quarantine(self):
        from repro.net.shard import ProcessShardedScopeManager

        with ProcessShardedScopeManager(shards=1, scope_factory=None) as pm:
            qid = pm.attach_query("out = ewma(sig, $al)", params={"al": 0.5})
            remote = pm.handle_of(0).stats()
            assert qid in remote["queries"]

            # A failing evaluation quarantines in the child and the
            # counter rides the stats reply into the router ledger.
            pm.attach_query("bad = ewma(x / y, 0.5)")
            pm.push_samples("x", [0.0, 1.0], [1.0, 1.0])
            pm.push_samples("y", [0.0, 1.0], [1.0, 0.0])
            pm.drain()
            assert pm.totals()["query_quarantines"] == 1

            pm.detach_query(qid)
            pm.detach_query(qid)  # idempotent
            remote = pm.handle_of(0).stats()
            assert qid not in remote["queries"]

    def test_cross_shard_sources_rejected(self):
        from repro.net.shard import ProcessShardedScopeManager

        with ProcessShardedScopeManager(shards=2, scope_factory=None) as pm:
            names = [f"sig{i}" for i in range(32)]
            by_home = {}
            for name in names:
                by_home.setdefault(pm.shard_of(name), name)
            assert len(by_home) == 2  # 32 names always straddle 2 shards
            left, right = sorted(by_home.values())
            with pytest.raises(ValueError, match="span shards"):
                pm.attach_query(f"x = {left} + {right}")

    def test_compile_error_raises_router_side(self):
        from repro.net.shard import ProcessShardedScopeManager
        from repro.query import QueryCompileError

        with ProcessShardedScopeManager(shards=1, scope_factory=None) as pm:
            with pytest.raises(QueryCompileError):
                pm.attach_query("x = nosuchfn(a)")
