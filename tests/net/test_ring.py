"""Property tests for the consistent-hash ring.

The two claims that justify replacing ``hash mod N``:

* **Locality** — adding or removing one shard remaps only the keys in
  the changed arcs, about 1/N of a random namespace (asserted at a
  generous ≤ 1.5/N across randomized namespaces and shard counts;
  ``mod N`` would remap ~(N-1)/N).
* **Stability** — the assignment is a pure function of the bytes, not
  of interpreter state: a subprocess with a different PYTHONHASHSEED
  reproduces it exactly.
"""

import random
import subprocess
import sys

import pytest

from repro.net.shard import HashRing, ShardedScopeManager, shard_of

pytestmark = pytest.mark.faults


def random_names(rng, count):
    return [
        "sig-%d-%s" % (i, "".join(rng.choices("abcdefghij", k=6)))
        for i in range(count)
    ]


class TestRemapLocality:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", (4, 8, 16))
    def test_single_add_remaps_at_most_1_5_over_n(self, seed, n):
        rng = random.Random(seed)
        names = random_names(rng, 2000)
        ring = HashRing(range(n))
        before = {name: ring.locate(name) for name in names}
        ring.add(n)
        moved = sum(1 for name in names if ring.locate(name) != before[name])
        assert moved / len(names) <= 1.5 / n
        # Every moved key must have moved TO the new shard: an add only
        # steals arcs, it never shuffles keys between survivors.
        for name in names:
            if ring.locate(name) != before[name]:
                assert ring.locate(name) == n

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("n", (4, 8, 16))
    def test_single_remove_remaps_at_most_1_5_over_n(self, seed, n):
        rng = random.Random(seed)
        names = random_names(rng, 2000)
        ring = HashRing(range(n))
        before = {name: ring.locate(name) for name in names}
        victim = rng.randrange(n)
        ring.remove(victim)
        moved = 0
        for name in names:
            after = ring.locate(name)
            if after != before[name]:
                moved += 1
                # Only the victim's keys move.
                assert before[name] == victim
            assert after != victim
        assert moved / len(names) <= 1.5 / n

    def test_spread_is_roughly_uniform(self):
        rng = random.Random(0)
        names = random_names(rng, 8000)
        ring = HashRing(range(8))
        counts = {i: 0 for i in range(8)}
        for name in names:
            counts[ring.locate(name)] += 1
        expected = len(names) / 8
        for shard, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, (shard, count)


class TestStability:
    def test_assignment_is_interpreter_independent(self):
        """A subprocess with a different hash seed agrees exactly."""
        names = ["alpha", "beta", "gamma", "net.rx.bytes", "cpu0.idle"]
        local = [shard_of(name, 8) for name in names]
        code = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.net.shard import shard_of; "
            "print([shard_of(n, 8) for n in %r])" % (names,)
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONHASHSEED": "12345", "PATH": "/usr/bin:/bin"},
            cwd="/root/repo",
        )
        assert eval(out.stdout.strip()) == local

    def test_locate_is_idempotent_across_rebuilds(self):
        names = random_names(random.Random(1), 500)
        a = HashRing(range(6))
        b = HashRing(range(6))
        assert [a.locate(n) for n in names] == [b.locate(n) for n in names]

    def test_empty_ring_refuses_to_route(self):
        with pytest.raises(ValueError):
            HashRing().locate("anything")


class TestShardedMembership:
    """Live add/remove on a ShardedScopeManager rides the same ring."""

    def test_add_shard_migrates_scopes_to_new_homes(self):
        sharded = ShardedScopeManager(shards=3)
        names = random_names(random.Random(2), 40)
        for name in names:
            sharded.scope_new(name, period_ms=50)
        before = {name: sharded.shard_of(name) for name in names}
        version_before = sharded.topology_version
        new_id = sharded.add_shard()
        assert new_id == 3
        assert sharded.topology_version != version_before
        moved = 0
        for name in names:
            home = sharded.shard_of(name)
            # The scope lives where its name now routes.
            assert name in sharded.manager_of(home)
            if home != before[name]:
                moved += 1
                assert home == new_id
        assert moved <= len(names)  # and typically ~len/4

    def test_remove_shard_preserves_scopes_and_counters(self):
        sharded = ShardedScopeManager(shards=4)
        names = random_names(random.Random(3), 30)
        for name in names:
            sharded.scope_new(name, period_ms=50, delay_ms=1e9)
        # Push through one name so a shard has non-zero counters.
        target = names[0]
        victim = sharded.shard_of(target)
        scope = sharded.scope(target)
        from repro.core.signal import buffer_signal

        scope.signal_new(buffer_signal(target))
        sharded.push_samples(target, [0.0, 1.0], [1.0, 2.0])
        offered_before = sharded.totals()["offered"]
        assert offered_before == 2

        sharded.remove_shard(victim)
        assert sharded.n_shards == 3
        assert victim not in sharded.shard_ids
        # Every scope survived, now living on the remaining shards.
        for name in names:
            assert name in sharded
        # Retired counters still count.
        assert sharded.totals()["offered"] == offered_before

    def test_cannot_remove_last_shard(self):
        sharded = ShardedScopeManager(shards=1)
        with pytest.raises(ValueError):
            sharded.remove_shard(0)

    def test_membership_frozen_with_per_shard_loops(self):
        from repro.eventloop.loop import MainLoop

        loops = [MainLoop(), MainLoop()]
        sharded = ShardedScopeManager(shards=2, loops=loops)
        with pytest.raises(ValueError):
            sharded.add_shard()
        with pytest.raises(ValueError):
            sharded.remove_shard(0)

    def test_route_cache_invalidated_on_membership_change(self):
        sharded = ShardedScopeManager(shards=2)
        names = random_names(random.Random(4), 200)
        first = {name: sharded.shard_of(name) for name in names}  # warm cache
        sharded.add_shard()
        second = {name: sharded.shard_of(name) for name in names}
        # At least one name must re-route (2000+ vnode arcs changed);
        # a stale cache would freeze the old answers.
        assert first != second
        fresh = ShardedScopeManager(shards=3)
        assert second == {name: fresh.shard_of(name) for name in names}
