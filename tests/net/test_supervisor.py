"""Unit tests for shard supervision: heartbeats, detection, restart."""

import pytest

from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ShardDown, ShardState, ShardSupervisor, shard_of
from repro.net.supervisor import ShardHost

pytestmark = pytest.mark.faults

SIGNALS = ["alpha", "beta", "gamma", "delta", "epsilon"]
N = 2


def factory(manager, shard_id):
    scope = manager.scope_new(f"scope-{shard_id}", period_ms=50, delay_ms=80.0)
    for name in SIGNALS:
        if shard_of(name, N) == shard_id:
            scope.signal_new(buffer_signal(name, filter=0.25))
    scope.set_polling_mode(50)
    scope.start_polling()


def make_supervisor(tmp_path, **kwargs):
    loop = MainLoop()
    defaults = dict(
        shards=N,
        scope_factory=factory,
        heartbeat_ms=50.0,
        miss_threshold=3,
        segment_samples=128,
    )
    defaults.update(kwargs)
    return loop, ShardSupervisor(loop, tmp_path / "wal", **defaults)


class TestHeartbeat:
    def test_running_host_beats_every_interval(self, tmp_path):
        loop, sup = make_supervisor(tmp_path)
        loop.run_until(500.0)
        for host in sup.hosts:
            # 500ms at 50ms beats, give or take the inclusive edge.
            assert 8 <= host.beats <= 11
            assert host.state is ShardState.RUNNING
        assert sup.totals()["restarts"] == 0

    def test_stalled_host_freezes_and_restarts(self, tmp_path):
        loop, sup = make_supervisor(tmp_path)
        loop.run_until(300.0)
        sup.stall_shard(0)
        # miss_threshold=3 ticks at 50ms → detection within 200ms.
        loop.run_until(600.0)
        host = sup.host(0)
        assert host.state is ShardState.RUNNING  # fresh replacement
        assert host.stats.restarts == 1
        assert host.stats.missed_beats >= 3
        assert host.stats.last_restart_at is not None
        assert host.stats.last_restart_at - 300.0 <= 4 * 50.0 + 1e-9
        assert len(sup.quarantined) == 1
        assert sup.host(1).stats.restarts == 0  # healthy shard untouched

    def test_crashed_host_detected_within_one_tick(self, tmp_path):
        loop, sup = make_supervisor(tmp_path)
        loop.run_until(275.0)
        sup.crash_shard(1)
        loop.run_until(350.0)  # next monitor tick at 300
        host = sup.host(1)
        assert host.stats.restarts == 1
        assert host.stats.last_restart_at <= 300.0 + 1e-9

    def test_monitor_shorter_than_heartbeat_rejected(self, tmp_path):
        loop = MainLoop()
        with pytest.raises(ValueError):
            ShardSupervisor(
                loop, tmp_path / "wal", heartbeat_ms=50.0, monitor_interval_ms=20.0
            )


class TestDelivery:
    def test_crashed_delivery_raises_and_supervisor_absorbs(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        sup.crash_shard(home)
        with pytest.raises(ShardDown):
            sup.host(home).deliver(0.0, name, (0.0,), (1.0,))
        # The routed path absorbs it (WAL holds the batch).
        assert sup.push_samples(name, (0.0,), (1.0,)) == 0
        assert sup.host(home).stats.lost_deliveries == 1

    def test_stall_then_resume_is_lossless(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        loop.clock.wait_until(100.0)
        sup.push_samples(name, (100.0,), (1.0,))
        sup.stall_shard(home)
        loop.clock.wait_until(120.0)
        sup.push_samples(name, (120.0,), (2.0,))  # parks in the inbox
        assert sup.host(home).stats.offered == 1
        sup.resume_shard(home)
        stats = sup.host(home).stats
        assert stats.offered == 2
        assert stats.accepted == 2

    def test_ingest_exception_quarantines_host(self):
        host = ShardHost(0, heartbeat_ms=10.0)

        def boom(name, times, values):
            raise RuntimeError("poisoned batch")

        host.manager.push_samples = boom
        with pytest.raises(ShardDown):
            host.ingest("sig", (0.0,), (1.0,))
        assert host.state is ShardState.CRASHED
        assert isinstance(host.crash_error, RuntimeError)
        # Subsequent routed deliveries are refused until restart.
        with pytest.raises(ShardDown):
            host.deliver(1.0, "sig", (1.0,), (1.0,))


class TestRestartRecovery:
    def test_restart_replays_wal_history(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        for k in range(20):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        accepted_before = sup.host(home).stats.accepted
        sup.crash_shard(home)
        sup.restart_shard(home)
        stats = sup.host(home).stats
        assert stats.restarts == 1
        assert stats.replayed_samples == 20
        assert stats.offered == 20
        assert stats.accepted == accepted_before

    def test_restart_with_empty_wal(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        loop.clock.wait_until(500.0)
        sup.crash_shard(0)
        host = sup.restart_shard(0)
        assert host.stats.replayed_samples == 0
        # The fresh private loop caught up to the router clock.
        assert host.loop.clock.now() == 500.0

    def test_restart_bumps_topology_version(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        before = sup.topology_version
        sup.crash_shard(0)
        sup.restart_shard(0)
        assert sup.topology_version != before

    def test_restart_with_torn_wal_tail_skips_partial_segment(self, tmp_path):
        """A WAL tail torn by a real process kill must not poison the
        restart: completed segments replay, the torn one is skipped."""
        loop, sup = make_supervisor(tmp_path, segment_samples=8, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        import numpy as np

        for k in range(4):  # 4 pushes of 8 samples = 4 sealed segments
            now = (k + 1) * 50.0
            loop.clock.wait_until(now)
            times = np.linspace(now - 5.0, now, 8)
            sup.push_samples(name, times, times * 2.0)
        wal_dir = tmp_path / "wal" / f"shard-{home:02d}"
        tail = sorted(wal_dir.glob("*.gseg"))[-1]
        raw = tail.read_bytes()
        tail.write_bytes(raw[: len(raw) // 3])

        sup.crash_shard(home)
        host = sup.restart_shard(home)
        assert host.stats.replayed_samples == 24  # 3 good segments
        assert host.stats.offered == 24

    def test_double_restart_replays_full_history(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        for k in range(10):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        sup.crash_shard(home)
        sup.restart_shard(home)
        for k in range(10, 20):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        sup.crash_shard(home)
        sup.restart_shard(home)
        stats = sup.host(home).stats
        assert stats.restarts == 2
        assert stats.replayed_samples == 20  # both halves, second restart
        assert stats.offered == 20


class TestWalRotation:
    def test_snapshot_retires_segments_and_writes_state(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False, segment_samples=8)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        import numpy as np

        for k in range(4):
            now = (k + 1) * 50.0
            loop.clock.wait_until(now)
            times = np.linspace(now - 5.0, now, 8)
            sup.push_samples(name, times, times * 2.0)
        wal_dir = tmp_path / "wal" / f"shard-{home:02d}"
        assert sorted(wal_dir.glob("*.gseg"))
        sup.snapshot_shard(home)
        assert sorted(wal_dir.glob("*.gseg")) == []
        assert sup.state_path(home).exists()
        # The fresh writer keeps recording in the same directory.
        loop.clock.wait_until(300.0)
        times = np.linspace(295.0, 300.0, 8)
        sup.push_samples(name, times, times)
        assert sorted(wal_dir.glob("*.gseg"))
        sup.close()

    def test_restart_after_rotation_replays_suffix_only(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        for k in range(20):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        accepted_mid = sup.host(home).stats.accepted
        sup.snapshot_shard(home)
        for k in range(20, 30):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        accepted_before = sup.host(home).stats.accepted
        assert accepted_before > accepted_mid
        sup.crash_shard(home)
        sup.restart_shard(home)
        stats = sup.host(home).stats
        assert stats.restarts == 1
        assert stats.replayed_samples == 10  # the post-snapshot suffix only
        assert stats.offered == 30  # snapshot ledger + replayed suffix
        assert stats.accepted == accepted_before
        sup.close()

    def test_rotation_keeps_torn_tail_guarantee(self, tmp_path):
        """The live (post-rotation) segment still recovers from a torn
        tail exactly as before rotation existed."""
        loop, sup = make_supervisor(tmp_path, auto_start=False, segment_samples=8)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        import numpy as np

        for k in range(2):
            now = (k + 1) * 50.0
            loop.clock.wait_until(now)
            sup.push_samples(name, np.linspace(now - 5, now, 8), np.zeros(8))
        sup.snapshot_shard(home)
        for k in range(2, 5):
            now = (k + 1) * 50.0
            loop.clock.wait_until(now)
            sup.push_samples(name, np.linspace(now - 5, now, 8), np.ones(8))
        wal_dir = tmp_path / "wal" / f"shard-{home:02d}"
        sup._wals[home].flush_segment()
        tail = sorted(wal_dir.glob("*.gseg"))[-1]
        raw = tail.read_bytes()
        tail.write_bytes(raw[: len(raw) // 3])
        sup.crash_shard(home)
        host = sup.restart_shard(home)
        # 2 intact post-rotation segments replay; the torn third skips.
        assert host.stats.replayed_samples == 16
        assert host.stats.offered == 16 + 16  # restored ledger + suffix
        sup.close()

    def test_snapshot_refuses_non_running_host(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        sup.push_samples(name, (0.0,), (1.0,))
        sup.stall_shard(home)
        sup.push_samples(name, (1.0,), (2.0,))  # parks in the inbox
        with pytest.raises(ShardDown, match="RUNNING"):
            sup.snapshot_shard(home)
        sup.resume_shard(home)
        sup.snapshot_shard(home)  # fine once the inbox drained
        sup.close()

    def test_rotate_on_restart_retires_replayed_history(self, tmp_path):
        loop, sup = make_supervisor(
            tmp_path, auto_start=False, rotate_on_restart=True
        )
        name = SIGNALS[0]
        home = sup.shard_of(name)
        for k in range(10):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        sup.crash_shard(home)
        sup.restart_shard(home)
        wal_dir = tmp_path / "wal" / f"shard-{home:02d}"
        assert sorted(wal_dir.glob("*.gseg")) == []  # history retired
        assert sup.state_path(home).exists()
        # A second crash replays only what arrived after the restart.
        for k in range(10, 15):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        sup.crash_shard(home)
        sup.restart_shard(home)
        stats = sup.host(home).stats
        assert stats.restarts == 2
        assert stats.replayed_samples == 5
        assert stats.offered == 15
        sup.close()

    def test_wal_bytes_ledger_counts_and_survives_restart(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        name = SIGNALS[0]
        home = sup.shard_of(name)
        for k in range(12):
            loop.clock.wait_until(k * 10.0)
            sup.push_samples(name, (k * 10.0,), (float(k),))
        assert sup.host(home).stats.wal_bytes == 12 * 16
        assert sup.totals()["wal_bytes"] == 12 * 16
        sup.crash_shard(home)
        sup.restart_shard(home)
        assert sup.host(home).stats.wal_bytes == 12 * 16  # carried forward
        sup.close()


class TestManagerProtocol:
    def test_carries_and_auto_create_route_by_name(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        assert sup.carries(SIGNALS[0])
        assert not sup.carries("unregistered")
        assert sup.auto_create("unregistered")
        assert sup.carries("unregistered")

    def test_routing_matches_module_ring(self, tmp_path):
        loop, sup = make_supervisor(tmp_path, auto_start=False)
        for name in SIGNALS + ["x", "y", "z"]:
            assert sup.shard_of(name) == shard_of(name, N)


class TestHostOrdering:
    def test_deliver_dispatches_equal_instant_sources_first(self):
        """A source due exactly at the push instant runs before the push
        — the property the replay path relies on for byte-identity."""
        order = []
        host = ShardHost(0, heartbeat_ms=10.0)
        scope = host.manager.scope_new("s", period_ms=50, delay_ms=1e9)
        scope.signal_new(buffer_signal("sig"))
        host.loop.timeout_add(30.0, lambda lost: order.append("timer") or False)

        class Probe:
            def __call__(self, name, times, values, now_ms):
                order.append(("push", now_ms))

        host.manager.add_tap(Probe())
        host.deliver(30.0, "sig", (30.0,), (1.0,))
        assert order == ["timer", ("push", 30.0)]
