"""Tests for memory and socket transports."""

import pytest

from repro.eventloop.clock import VirtualClock
from repro.net.transport import (
    LatencyLink,
    TransportClosed,
    memory_pair,
    socket_pair,
)


class TestLatencyLink:
    def test_zero_delay_is_immediate(self):
        clock = VirtualClock()
        link = LatencyLink(clock, 0.0)
        link.send(b"hi")
        assert link.readable()
        assert link.recv() == b"hi"

    def test_delay_holds_bytes(self):
        clock = VirtualClock()
        link = LatencyLink(clock, delay_ms=50)
        link.send(b"hi")
        assert not link.readable()
        clock.advance(49)
        assert not link.readable()
        clock.advance(1)
        assert link.recv() == b"hi"

    def test_chunks_preserve_order(self):
        clock = VirtualClock()
        link = LatencyLink(clock, 10)
        link.send(b"a")
        clock.advance(5)
        link.send(b"b")
        clock.advance(10)
        assert link.recv() == b"ab"

    def test_recv_respects_max_bytes(self):
        clock = VirtualClock()
        link = LatencyLink(clock, 0)
        link.send(b"abcdef")
        assert link.recv(2) == b"ab"
        assert link.recv(100) == b"cdef"

    def test_closed_link_rejects_send(self):
        link = LatencyLink(VirtualClock(), 0)
        link.close()
        with pytest.raises(TransportClosed):
            link.send(b"x")

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            LatencyLink(VirtualClock(), -1)


class TestMemoryPair:
    def test_duplex(self):
        clock = VirtualClock()
        a, b = memory_pair(clock)
        a.send(b"to-b")
        b.send(b"to-a")
        assert b.recv() == b"to-b"
        assert a.recv() == b"to-a"

    def test_latency_applies_both_ways(self):
        clock = VirtualClock()
        a, b = memory_pair(clock, latency_ms=20)
        a.send(b"x")
        assert not b.readable()
        clock.advance(20)
        assert b.readable()

    def test_byte_counters(self):
        clock = VirtualClock()
        a, b = memory_pair(clock)
        a.send(b"hello")
        b.recv()
        assert a.bytes_sent == 5
        assert b.bytes_received == 5

    def test_close_propagates_to_send(self):
        a, b = memory_pair(VirtualClock())
        a.close()
        with pytest.raises(TransportClosed):
            a.send(b"x")
        assert not a.writable()

    def test_writable_when_open(self):
        a, _ = memory_pair(VirtualClock())
        assert a.writable()


class TestSocketPair:
    def test_roundtrip(self):
        a, b = socket_pair()
        try:
            a.send(b"ping")
            # Readiness is select()-based and immediate on loopback.
            assert b.readable()
            assert b.recv() == b"ping"
            assert not b.readable()
        finally:
            a.close()
            b.close()

    def test_writable(self):
        a, b = socket_pair()
        try:
            assert a.writable()
        finally:
            a.close()
            b.close()

    def test_closed_socket_rejects_io(self):
        a, b = socket_pair()
        a.close()
        b.close()
        with pytest.raises(TransportClosed):
            a.send(b"x")
        with pytest.raises(TransportClosed):
            b.recv()
        assert not a.readable()
