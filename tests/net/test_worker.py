"""Unit tests for the process-worker plane: ring, handle, lifecycle."""

import numpy as np
import pytest

from repro.core.signal import SignalSpec, SignalType, buffer_signal
from repro.net import ProcessShardedScopeManager, ShmRing, WorkerDied, shard_of
from repro.net.worker import WorkerHandle

SIGNALS = ["alpha", "beta", "gamma", "delta"]
N = 2


def factory(manager, shard_id):
    scope = manager.scope_new(f"scope-{shard_id}", period_ms=50, delay_ms=150.0)
    for name in SIGNALS:
        scope.signal_new(buffer_signal(name))
    scope.set_polling_mode(50)
    scope.start_polling()


def poisoned_factory(manager, shard_id):
    # Normal scopes, but one magic signal name blows up ingest: the
    # worker must quarantine (crash report + nonzero exit), not wedge.
    factory(manager, shard_id)
    original = manager.push_samples

    def poisoned(name, times, values):
        if name == "poison":
            raise RuntimeError("poisoned batch")
        return original(name, times, values)

    manager.push_samples = poisoned


class TestShmRing:
    def roundtrip(self, ring, name_id, now, n, seed):
        rng = np.random.default_rng(seed)
        t = rng.uniform(0, 1000, n)
        v = rng.normal(size=n)
        assert ring.try_push(name_id, now, t.tobytes(), v.tobytes())
        got_id, got_now, got_t, got_v = ring.pop()
        assert (got_id, got_now) == (name_id, now)
        np.testing.assert_array_equal(got_t, t)
        np.testing.assert_array_equal(got_v, v)

    def test_roundtrip_and_wraparound(self):
        ring = ShmRing.create(4096)
        try:
            # Many records through a small ring force the wrap marker
            # path repeatedly; every record must come back intact.
            for i in range(200):
                self.roundtrip(ring, i % 7, float(i), 1 + i % 50, seed=i)
        finally:
            ring.close()

    def test_full_ring_refuses_push(self):
        ring = ShmRing.create(4096)
        try:
            t = np.zeros(60).tobytes()
            pushed = 0
            while ring.try_push(0, 0.0, t, t):
                pushed += 1
            assert 0 < pushed < 5  # bounded by capacity, not accepted forever
            assert ring.fallbacks == 1
            # Draining frees the space again (one pop may not be enough:
            # a record that would straddle the end also burns the
            # contiguous tail gap on a wrap marker).
            for _ in range(pushed):
                ring.pop()
            assert ring.try_push(0, 0.0, t, t)
        finally:
            ring.close()

    def test_attach_sees_producer_records(self):
        producer = ShmRing.create(4096)
        try:
            consumer = ShmRing.attach(producer.name)
            t = np.array([1.0, 2.0])
            v = np.array([3.0, 4.0])
            assert producer.try_push(9, 55.0, t.tobytes(), v.tobytes())
            name_id, now, got_t, got_v = consumer.pop()
            assert (name_id, now) == (9, 55.0)
            np.testing.assert_array_equal(got_v, v)
            consumer.shm.close()
        finally:
            ring = producer
            ring.close()


@pytest.mark.distributed
class TestWorkerHandle:
    def test_lifecycle_deliver_stats_snapshot_shutdown(self):
        handle = WorkerHandle(0, factory, heartbeat_s=5.0)
        try:
            offered = handle.deliver(100.0, "alpha", [90.0, 95.0], [1.0, 2.0])
            assert offered == 2
            remote = handle.drain(2, timeout_s=30.0)
            assert remote["offered"] == 2
            snap = handle.snapshot_state(timeout_s=30.0)
            assert "scope-0" in snap["manager"]["scopes"]
            assert snap["stats"]["offered"] == 2
        finally:
            handle.close()
        assert handle.exitcode == 0  # graceful shutdown, not a kill

    def test_kill_detected_and_requests_fail_fast(self):
        handle = WorkerHandle(1, factory, heartbeat_s=5.0)
        try:
            handle.kill()
            assert not handle.is_alive()
            with pytest.raises(WorkerDied):
                handle.stats(timeout_s=5.0)
        finally:
            handle.close()

    def test_child_crash_reported_not_wedged(self):
        handle = WorkerHandle(0, poisoned_factory, heartbeat_s=5.0)
        try:
            handle.deliver(100.0, "poison", [90.0], [1.0])
            with pytest.raises(WorkerDied, match="crash"):
                handle.drain(1, timeout_s=30.0)
            handle.process.join(timeout=10.0)
            assert handle.exitcode == 1
        finally:
            handle.close()


@pytest.mark.distributed
class TestProcessShardedScopeManager:
    @pytest.mark.parametrize("use_shm", (False, True))
    def test_routing_matches_in_process_ring_and_counts_settle(self, use_shm):
        with ProcessShardedScopeManager(
            shards=N, scope_factory=factory, use_shm=use_shm
        ) as mgr:
            for name in SIGNALS:
                assert mgr.shard_of(name) == shard_of(name, N)
            rng = np.random.default_rng(3)
            offered = 0
            for step in range(30):
                mgr.loop.run_for(20.0)
                now = mgr.loop.clock.now()
                for name in SIGNALS:
                    t = now - rng.uniform(0.0, 200.0, 2)
                    offered += mgr.push_samples(name, t, rng.normal(size=2))
            mgr.advance_all()
            mgr.drain(timeout_s=60.0)
            totals = mgr.totals()
            assert totals["offered"] == offered
            assert totals["accepted"] + totals["dropped_late"] == offered
            assert totals["dropped_late"] > 0
