"""Tests for the wire protocol (tuple lines over byte chunks)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import TupleFormatError
from repro.net.protocol import LineDecoder, decode_lines, encode_sample


class TestEncode:
    def test_frame_shape(self):
        assert encode_sample(100, 42, "CWND") == b"100 42 CWND\n"

    def test_unnamed_sample(self):
        assert encode_sample(100, 42) == b"100 42\n"


class TestLineDecoder:
    def test_complete_lines(self):
        dec = LineDecoder()
        assert dec.feed(b"a\nb\n") == ["a", "b"]
        assert dec.pending == b""

    def test_partial_line_carried(self):
        dec = LineDecoder()
        assert dec.feed(b"hel") == []
        assert dec.pending == b"hel"
        assert dec.feed(b"lo\n") == ["hello"]

    def test_multiple_partials(self):
        dec = LineDecoder()
        out = []
        for chunk in (b"1 2", b" a\n3 ", b"4 b", b"\n"):
            out.extend(dec.feed(chunk))
        assert out == ["1 2 a", "3 4 b"]


class TestDecodeLines:
    def test_tuples_parsed(self):
        tuples, dec = decode_lines(b"10 1 x\n20 2 y\n")
        assert [(t.time_ms, t.value, t.name) for t in tuples] == [
            (10.0, 1.0, "x"),
            (20.0, 2.0, "y"),
        ]

    def test_comments_skipped(self):
        tuples, _ = decode_lines(b"# hello\n10 1 x\n\n")
        assert len(tuples) == 1

    def test_partial_tuple_not_emitted_early(self):
        tuples, dec = decode_lines(b"10 1 x\n20 2")
        assert len(tuples) == 1
        tuples, dec = decode_lines(b" y\n", dec)
        assert [(t.time_ms, t.name) for t in tuples] == [(20.0, "y")]

    def test_malformed_raises(self):
        with pytest.raises(TupleFormatError):
            decode_lines(b"not a tuple at all\n")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=7),
    )
    def test_arbitrary_chunking_preserves_stream(self, samples, chunk_size):
        """However the network fragments the stream, the decoded tuples
        are exactly the encoded ones, in order."""
        wire = b"".join(encode_sample(t, v, "s") for t, v in samples)
        decoder = LineDecoder()
        out = []
        for i in range(0, len(wire), chunk_size):
            tuples, decoder = decode_lines(wire[i : i + chunk_size], decoder)
            out.extend(tuples)
        assert [(t.time_ms, t.value) for t in out] == [
            (float(t), float(v)) for t, v in samples
        ]
