"""Tests for the wire protocols (text tuple lines and binary frames)."""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.tuples import TupleFormatError
from repro.net.protocol import (
    FRAME_HEADER,
    FrameDecoder,
    FrameKind,
    LineDecoder,
    MAGIC,
    MAX_FRAME_SAMPLES,
    MAX_NAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    WireDecoder,
    decode_lines,
    encode_binary_samples,
    encode_hello,
    encode_name_def,
    encode_sample,
)


class TestEncode:
    def test_frame_shape(self):
        assert encode_sample(100, 42, "CWND") == b"100 42 CWND\n"

    def test_unnamed_sample(self):
        assert encode_sample(100, 42) == b"100 42\n"


class TestLineDecoder:
    def test_complete_lines(self):
        dec = LineDecoder()
        assert dec.feed(b"a\nb\n") == ["a", "b"]
        assert dec.pending == b""

    def test_partial_line_carried(self):
        dec = LineDecoder()
        assert dec.feed(b"hel") == []
        assert dec.pending == b"hel"
        assert dec.feed(b"lo\n") == ["hello"]

    def test_multiple_partials(self):
        dec = LineDecoder()
        out = []
        for chunk in (b"1 2", b" a\n3 ", b"4 b", b"\n"):
            out.extend(dec.feed(chunk))
        assert out == ["1 2 a", "3 4 b"]


class TestDecodeLines:
    def test_tuples_parsed(self):
        tuples, dec = decode_lines(b"10 1 x\n20 2 y\n")
        assert [(t.time_ms, t.value, t.name) for t in tuples] == [
            (10.0, 1.0, "x"),
            (20.0, 2.0, "y"),
        ]

    def test_comments_skipped(self):
        tuples, _ = decode_lines(b"# hello\n10 1 x\n\n")
        assert len(tuples) == 1

    def test_partial_tuple_not_emitted_early(self):
        tuples, dec = decode_lines(b"10 1 x\n20 2")
        assert len(tuples) == 1
        tuples, dec = decode_lines(b" y\n", dec)
        assert [(t.time_ms, t.name) for t in tuples] == [(20.0, "y")]

    def test_malformed_raises(self):
        with pytest.raises(TupleFormatError):
            decode_lines(b"not a tuple at all\n")

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e6, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        ),
        st.integers(min_value=1, max_value=7),
    )
    def test_arbitrary_chunking_preserves_stream(self, samples, chunk_size):
        """However the network fragments the stream, the decoded tuples
        are exactly the encoded ones, in order."""
        wire = b"".join(encode_sample(t, v, "s") for t, v in samples)
        decoder = LineDecoder()
        out = []
        for i in range(0, len(wire), chunk_size):
            tuples, decoder = decode_lines(wire[i : i + chunk_size], decoder)
            out.extend(tuples)
        assert [(t.time_ms, t.value) for t in out] == [
            (float(t), float(v)) for t, v in samples
        ]


class TestLineDecoderBound:
    def test_partial_at_cap_is_fine(self):
        dec = LineDecoder(max_line_bytes=16)
        assert dec.feed(b"x" * 16) == []
        assert dec.feed(b"\n") == ["x" * 16]

    def test_partial_past_cap_is_protocol_error(self):
        dec = LineDecoder(max_line_bytes=16)
        with pytest.raises(ProtocolError, match="cap"):
            dec.feed(b"x" * 17)
        # The oversized partial is discarded, not retained.
        assert dec.pending == b""

    def test_cap_reached_across_many_feeds(self):
        """A peer trickling a newline-free stream cannot grow memory."""
        dec = LineDecoder(max_line_bytes=64)
        with pytest.raises(ProtocolError):
            for _ in range(100):
                dec.feed(b"abcdefgh")

    def test_complete_lines_unaffected_by_cap(self):
        dec = LineDecoder(max_line_bytes=8)
        # Long *terminated* lines pass; only the carried partial is bounded.
        assert dec.feed(b"1 2 a\n3 4 b\n") == ["1 2 a", "3 4 b"]

    def test_default_cap_is_64k(self):
        assert LineDecoder().max_line_bytes == 64 * 1024


class TestBinaryEncode:
    def test_hello_frame_shape(self):
        frame = encode_hello()
        assert len(frame) == FRAME_HEADER.size
        magic, version, kind, name_id, count = FRAME_HEADER.unpack(frame)
        assert (magic, version, kind, name_id, count) == (
            MAGIC,
            PROTOCOL_VERSION,
            FrameKind.HELLO,
            0,
            0,
        )

    def test_name_def_carries_utf8_payload(self):
        frame = encode_name_def(3, "CWND")
        assert frame[FRAME_HEADER.size :] == b"CWND"
        _, _, kind, name_id, count = FRAME_HEADER.unpack_from(frame)
        assert (kind, name_id, count) == (FrameKind.NAME_DEF, 3, 4)

    def test_samples_payload_is_contiguous_columns(self):
        times = np.array([1.0, 2.0, 3.0])
        values = np.array([10.0, 20.0, 30.0])
        frame = encode_binary_samples(7, times, values)
        header, payload = frame[: FRAME_HEADER.size], frame[FRAME_HEADER.size :]
        _, _, kind, name_id, count = FRAME_HEADER.unpack(header)
        assert (kind, name_id, count) == (FrameKind.SAMPLES, 7, 3)
        columns = times.astype("<f8").tobytes() + values.astype("<f8").tobytes()
        # v2 payload: the two columns followed by their crc32 trailer.
        assert payload == columns + struct.pack("<I", zlib.crc32(columns))

    def test_v1_samples_payload_is_bare_columns(self):
        times = np.array([1.0, 2.0])
        values = np.array([10.0, 20.0])
        frame = encode_binary_samples(7, times, values, version=1)
        _, version, kind, _, count = FRAME_HEADER.unpack_from(frame)
        assert (version, kind, count) == (1, FrameKind.SAMPLES, 2)
        assert frame[FRAME_HEADER.size :] == (
            times.astype("<f8").tobytes() + values.astype("<f8").tobytes()
        )

    def test_empty_batch_encodes_to_nothing(self):
        assert encode_binary_samples(0, [], []) == b""

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ValueError):
            encode_binary_samples(0, [1.0, 2.0], [1.0])

    def test_whitespace_name_rejected(self):
        with pytest.raises(ProtocolError):
            encode_name_def(0, "bad name")

    def test_empty_name_rejected(self):
        with pytest.raises(ProtocolError):
            encode_name_def(0, "")

    def test_oversized_batch_splits_into_multiple_frames(self):
        n = MAX_FRAME_SAMPLES + 5
        t = np.arange(n, dtype=np.float64)
        wire = encode_binary_samples(1, t, t)
        frames = FrameDecoder().feed(wire)
        assert [len(f) for f in frames] == [MAX_FRAME_SAMPLES, 5]
        np.testing.assert_array_equal(
            np.concatenate([f.times for f in frames]), t
        )


class TestFrameDecoder:
    def roundtrip(self, wire, chunk_size):
        dec = FrameDecoder()
        frames = []
        for i in range(0, len(wire), chunk_size):
            frames.extend(dec.feed(wire[i : i + chunk_size]))
        return dec, frames

    def test_single_byte_fragmentation(self):
        """The harshest chunking — one byte per feed — decodes the
        stream identically to one big feed."""
        times = np.linspace(0.0, 99.0, 100)
        values = np.sin(times)
        wire = (
            encode_hello()
            + encode_name_def(0, "sig")
            + encode_binary_samples(0, times, values)
        )
        dec, frames = self.roundtrip(wire, 1)
        assert [f.kind for f in frames] == [
            FrameKind.HELLO,
            FrameKind.NAME_DEF,
            FrameKind.SAMPLES,
        ]
        assert frames[1].name == "sig"
        np.testing.assert_array_equal(frames[2].times, times)
        np.testing.assert_array_equal(frames[2].values, values)
        assert dec.pending == 0

    @given(st.integers(min_value=1, max_value=37))
    def test_arbitrary_chunking_preserves_stream(self, chunk_size):
        rng = np.random.default_rng(chunk_size)
        wire = b"".join(
            encode_name_def(i, f"s{i}")
            + encode_binary_samples(i, rng.random(9), rng.random(9))
            for i in range(4)
        )
        _, frames = self.roundtrip(wire, chunk_size)
        assert len(frames) == 8
        assert [f.name for f in frames[::2]] == ["s0", "s1", "s2", "s3"]

    def test_bad_magic_raises_immediately(self):
        dec = FrameDecoder()
        with pytest.raises(ProtocolError, match="magic"):
            dec.feed(b"\x00" * FRAME_HEADER.size)

    def test_bad_version_raises(self):
        frame = FRAME_HEADER.pack(MAGIC, 99, FrameKind.HELLO, 0, 0)
        with pytest.raises(ProtocolError, match="version"):
            FrameDecoder().feed(frame)

    def test_unknown_kind_raises(self):
        frame = FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, 42, 0, 0)
        with pytest.raises(ProtocolError, match="kind"):
            FrameDecoder().feed(frame)

    def test_absurd_sample_count_rejected_from_header_alone(self):
        """A corrupt count must fail fast, not wait for 60 GiB."""
        frame = FRAME_HEADER.pack(
            MAGIC, PROTOCOL_VERSION, FrameKind.SAMPLES, 0, 0xFFFFFFFF
        )
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder().feed(frame)

    def test_absurd_name_length_rejected(self):
        frame = FRAME_HEADER.pack(
            MAGIC, PROTOCOL_VERSION, FrameKind.NAME_DEF, 0, MAX_NAME_BYTES + 1
        )
        with pytest.raises(ProtocolError, match="cap"):
            FrameDecoder().feed(frame)

    def test_non_utf8_name_rejected(self):
        frame = FRAME_HEADER.pack(MAGIC, PROTOCOL_VERSION, FrameKind.NAME_DEF, 0, 2)
        with pytest.raises(ProtocolError, match="UTF-8"):
            FrameDecoder().feed(frame + b"\xff\xfe")

    def test_incomplete_header_pends(self):
        dec = FrameDecoder()
        assert dec.feed(encode_hello()[:5]) == []
        assert dec.pending == 5

    def test_decoded_columns_survive_buffer_compaction(self):
        """Column arrays must stay valid after the decoder's internal
        buffer is compacted by later feeds."""
        dec = FrameDecoder()
        times = np.arange(1000.0)
        first = dec.feed(encode_binary_samples(0, times, times))[0]
        snapshot = first.times.copy()
        for _ in range(200):  # push enough through to force compaction
            dec.feed(encode_binary_samples(0, times, times))
        np.testing.assert_array_equal(first.times, snapshot)


class TestWireNegotiation:
    def test_binary_first_byte_selects_binary(self):
        dec = WireDecoder()
        tuples, frames = dec.feed(encode_hello())
        assert dec.mode == "binary"
        assert tuples == [] and len(frames) == 1

    def test_text_first_byte_selects_text(self):
        dec = WireDecoder()
        tuples, frames = dec.feed(b"10 1 x\n")
        assert dec.mode == "text"
        assert frames == [] and len(tuples) == 1

    def test_one_byte_first_read_still_negotiates(self):
        dec = WireDecoder()
        wire = encode_name_def(0, "a") + encode_binary_samples(0, [1.0], [2.0])
        collected = []
        for i in range(len(wire)):
            _, frames = dec.feed(wire[i : i + 1])
            collected.extend(frames)
        assert dec.mode == "binary"
        assert [f.kind for f in collected] == [FrameKind.NAME_DEF, FrameKind.SAMPLES]

    def test_comment_led_text_stream_negotiates_text(self):
        dec = WireDecoder()
        tuples, _ = dec.feed(b"# header comment\n5 6 m\n")
        assert dec.mode == "text"
        assert [(t.time_ms, t.value) for t in tuples] == [(5.0, 6.0)]

    def test_empty_feed_leaves_mode_undecided(self):
        dec = WireDecoder()
        assert dec.feed(b"") == ([], [])
        assert dec.mode is None


class TestQueryFrames:
    """QUERY frames: the JSON continuous-query channel (v2-only)."""

    def test_round_trip(self):
        from repro.net.protocol import encode_query

        payload = {
            "op": "query",
            "id": "q7",
            "text": "s = ewma(a, $al)",
            "params": {"al": 0.9},
        }
        frames = FrameDecoder().feed(encode_query(payload))
        assert len(frames) == 1
        assert frames[0].kind is FrameKind.QUERY
        assert frames[0].control == payload

    def test_single_byte_fragmentation(self):
        from repro.net.protocol import encode_query

        wire = encode_query({"op": "subscribe", "id": "q0"}) + encode_query(
            {"op": "unsubscribe", "id": "q1"}
        )
        decoder = FrameDecoder()
        collected = []
        for i in range(len(wire)):
            collected.extend(decoder.feed(wire[i : i + 1]))
        assert [f.control["op"] for f in collected] == ["subscribe", "unsubscribe"]
        assert all(f.kind is FrameKind.QUERY for f in collected)

    def test_v1_query_frame_rejected(self):
        from repro.net.protocol import encode_query

        frame = bytearray(encode_query({"op": "subscribe", "id": "q0"}))
        frame[2] = 1  # rewrite the header's version byte to v1
        with pytest.raises(ProtocolError, match="require protocol version 2"):
            FrameDecoder().feed(bytes(frame))

    def test_non_json_payload_rejected(self):
        header = FRAME_HEADER.pack(MAGIC, 2, FrameKind.QUERY, 0, 4)
        with pytest.raises(ProtocolError, match="QUERY"):
            FrameDecoder().feed(header + b"\xff\xfe\xfd\xfc")

    def test_interleaves_with_sample_frames(self):
        from repro.net.protocol import encode_query

        wire = (
            encode_name_def(0, "a")
            + encode_query({"op": "query", "id": "q0", "text": "s = ewma(a, 0.5)"})
            + encode_binary_samples(0, [1.0, 2.0], [3.0, 4.0])
        )
        kinds = [f.kind for f in FrameDecoder().feed(wire)]
        assert kinds == [FrameKind.NAME_DEF, FrameKind.QUERY, FrameKind.SAMPLES]
