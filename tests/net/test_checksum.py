"""Frame-checksum corruption suite: corrupt bytes never become samples.

Version 2 of the binary protocol appends a crc32 over the contiguous
time/value columns to every SAMPLES (and DELIVER) payload.  The contract
under test: **a corrupted payload byte can disconnect the peer, but can
never deliver a wrong value** — for *every* single-byte flip in a
SAMPLES payload the decoder must raise :class:`ProtocolError`, and a
server receiving it must disconnect the session with the ``protocol``
reason having ingested zero samples from the corrupt frame.

Header bytes are a separate analysis (magic/version/kind/count flips hit
the structural validators; a name-id flip reroutes to an undefined id,
which is also a :class:`ProtocolError`) — the crc's job is the payload,
which previously decoded wrong float64s silently.

Version negotiation rides the header's version byte: a v1 peer omits the
trailer and the decoder accepts it (unchecked, as before), so old
clients keep working against new servers.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import (
    ScopeClient,
    ScopeServer,
    memory_pair,
)
from repro.net.protocol import (
    FRAME_HEADER,
    FrameDecoder,
    ProtocolError,
    encode_binary_samples,
    encode_deliver,
    encode_name_def,
)

HEADER = FRAME_HEADER.size


def sample_frame():
    times = np.array([100.0, 200.0, 300.0])
    values = np.array([1.5, -2.5, 42.0])
    return encode_binary_samples(7, times, values), times, values


class TestDecoderRejectsEveryPayloadFlip:
    def test_every_flipped_payload_byte_raises(self):
        """Exhaustive: flip each payload byte (columns AND crc trailer)."""
        frame, times, values = sample_frame()
        for offset in range(HEADER, len(frame)):
            corrupt = bytearray(frame)
            corrupt[offset] ^= 0xFF
            with pytest.raises(ProtocolError, match="checksum"):
                FrameDecoder().feed(bytes(corrupt))

    def test_every_flipped_bit_of_one_value_raises(self):
        """Per-bit granularity on one column byte, for good measure."""
        frame, _, _ = sample_frame()
        offset = HEADER + 8  # second float64 of the time column
        for bit in range(8):
            corrupt = bytearray(frame)
            corrupt[offset] ^= 1 << bit
            with pytest.raises(ProtocolError, match="checksum"):
                FrameDecoder().feed(bytes(corrupt))

    def test_deliver_payload_is_checksummed_too(self):
        frame = encode_deliver(3, 500.0, [1.0, 2.0], [10.0, 20.0])
        # Skip the leading float64 delivery instant: it is not covered
        # by the column crc (a flipped instant shifts the timeline, it
        # cannot forge a value); every column/crc byte must be caught.
        for offset in range(HEADER + 8, len(frame)):
            corrupt = bytearray(frame)
            corrupt[offset] ^= 0xFF
            with pytest.raises(ProtocolError, match="checksum"):
                FrameDecoder().feed(bytes(corrupt))

    def test_intact_frame_still_decodes(self):
        frame, times, values = sample_frame()
        (decoded,) = FrameDecoder().feed(frame)
        np.testing.assert_array_equal(decoded.times, times)
        np.testing.assert_array_equal(decoded.values, values)

    def test_corruption_detected_across_fragmentation(self):
        """A flip must be caught no matter how the stream fragments."""
        frame, _, _ = sample_frame()
        corrupt = bytearray(frame)
        corrupt[HEADER + 20] ^= 0x01
        dec = FrameDecoder()
        with pytest.raises(ProtocolError, match="checksum"):
            for i in range(len(corrupt)):
                dec.feed(bytes(corrupt[i : i + 1]))

    def test_v1_frame_has_no_trailer_and_decodes(self):
        """Old peers: version 1 frames are accepted unchecked."""
        times = np.array([1.0, 2.0])
        values = np.array([10.0, 20.0])
        frame = encode_binary_samples(7, times, values, version=1)
        assert len(frame) == HEADER + 32  # no crc trailer
        (decoded,) = FrameDecoder().feed(frame)
        assert decoded.version == 1
        np.testing.assert_array_equal(decoded.values, values)

    def test_crc_is_over_contiguous_columns(self):
        """The trailer equals crc32(times_bytes + values_bytes)."""
        frame, times, values = sample_frame()
        columns = times.astype("<f8").tobytes() + values.astype("<f8").tobytes()
        (crc,) = struct.unpack_from("<I", frame, len(frame) - 4)
        assert crc == zlib.crc32(columns)


class TestServerDisconnectsOnCorruptFrame:
    def make_rig(self):
        loop = MainLoop()
        manager = ScopeManager(loop)
        scope = manager.scope_new("remote", period_ms=50, delay_ms=100.0)
        scope.signal_new(buffer_signal("metric"))
        scope.set_polling_mode(50)
        scope.start_polling()
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        return loop, scope, server, near

    def test_every_payload_flip_disconnects_with_zero_samples(self):
        frame, _, _ = sample_frame()
        for offset in range(HEADER, len(frame)):
            loop, scope, server, near = self.make_rig()
            corrupt = bytearray(frame)
            corrupt[offset] ^= 0xFF
            near.send(encode_name_def(7, "metric"))
            near.send(bytes(corrupt))
            loop.run_for(300)
            assert server.disconnect_reasons == {"protocol": 1}, offset
            assert server.totals()["accepted"] == 0, offset
            assert server.totals()["received"] == 0, offset
            assert len(scope.channel("metric").trace) == 0, offset

    def test_corruption_after_good_traffic_keeps_only_good_samples(self):
        """A mid-stream flip drops the session, not history."""
        loop, scope, server, near = self.make_rig()
        near.send(encode_name_def(7, "metric"))
        now = loop.clock.now()
        near.send(encode_binary_samples(7, [now], [5.0]))
        loop.run_for(200)
        assert scope.value_of("metric") == 5.0
        frame, _, _ = sample_frame()
        corrupt = bytearray(frame)
        corrupt[HEADER + 3] ^= 0x40
        near.send(bytes(corrupt))
        loop.run_for(300)
        assert server.disconnect_reasons == {"protocol": 1}
        # The poisoned frame contributed nothing: one accepted sample.
        assert server.totals()["accepted"] == 1
        assert scope.channel("metric").raw_array().tolist() == [5.0]

    def test_v1_pinned_client_interoperates(self):
        """An old (version-1) client works against the new server."""
        loop, scope, server, near = self.make_rig()
        client = ScopeClient(near, loop, wire_version=1)
        client.send_sample("metric", 42.0, loop.clock.now())
        loop.run_for(300)
        assert scope.value_of("metric") == 42.0
        assert server.disconnect_reasons == {}
        assert server.totals()["protocol_errors"] == 0

    def test_worker_frames_rejected_on_client_sessions(self):
        """DELIVER/CONTROL are router↔worker frames; a client session
        sending one is disconnected, not silently ingested."""
        from repro.net.protocol import encode_control

        for frame in (
            encode_deliver(0, 100.0, [1.0], [2.0]),
            encode_control({"op": "beat"}),
        ):
            loop, scope, server, near = self.make_rig()
            near.send(encode_name_def(0, "metric"))
            near.send(frame)
            loop.run_for(300)
            assert server.disconnect_reasons == {"protocol": 1}
            assert server.totals()["accepted"] == 0
