"""Randomized equivalence: binary and text wires decide identically.

The binary columnar protocol is a *transport* optimisation — it must not
change a single accept/late-drop decision.  Each scenario drives the
same randomized sample schedule (timestamps jittered around the late
threshold, random batch sizes, random link latency) through a text
connection and a binary connection, then requires byte-identical
outcomes: server counters, buffer statistics, and the exact trace the
scope painted.

Text tuples render floats at ``repr`` precision, which round-trips
float64 exactly, so even samples landing *on* the late threshold must
decide the same way in both modes.
"""

import random

import numpy as np
import pytest

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair

SIGNALS = ("alpha", "beta", "gamma")
RUN_MS = 3_000.0
TICK_MS = 25.0


def run_schedule(mode: str, seed: int):
    """Drive one randomized schedule through a `mode` connection."""
    rng = random.Random(seed)
    delay_ms = rng.choice((40.0, 100.0, 250.0))
    latency_ms = rng.choice((0.0, 30.0, 80.0))

    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("remote", period_ms=50, delay_ms=delay_ms)
    for name in SIGNALS:
        scope.signal_new(buffer_signal(name))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock, latency_ms=latency_ms)
    server.add_client(far)
    client = ScopeClient(near, loop, mode=mode)

    def feed(_lost) -> bool:
        now = loop.clock.now()
        for name in SIGNALS:
            n = rng.randrange(0, 5)
            if n == 0:
                continue
            # Jitter timestamps around the late threshold so some
            # samples are exactly on it, some past it, some fresh.
            times = [now - rng.uniform(0.0, 2.0 * delay_ms) for _ in range(n)]
            times.sort()
            values = [rng.uniform(-100.0, 100.0) for _ in range(n)]
            if rng.random() < 0.3:
                for t, v in zip(times, values):
                    client.send_sample(name, v, time_ms=t)
            else:
                client.send_samples(name, values, times=times)
        return True

    loop.timeout_add(TICK_MS, feed)
    loop.run_until(RUN_MS)

    totals = server.totals()
    outcome = {
        "mode_negotiated": server.clients[0].mode,
        "received": totals["received"],
        "accepted": totals["accepted"],
        "dropped_late": totals["dropped_late"],
        "buffer_pushed": scope.buffer.stats.pushed,
        "buffer_dropped_late": scope.buffer.stats.dropped_late,
        "client_sent": client.sent,
    }
    traces = {
        name: (
            np.asarray(scope.channel(name).times(), dtype=np.float64),
            np.asarray(scope.channel(name).raw_values(), dtype=np.float64),
        )
        for name in SIGNALS
    }
    return outcome, traces


@pytest.mark.parametrize("seed", range(8))
def test_binary_and_text_decide_identically(seed):
    text_outcome, text_traces = run_schedule("text", seed)
    binary_outcome, binary_traces = run_schedule("binary", seed)

    assert text_outcome["mode_negotiated"] == "text"
    assert binary_outcome["mode_negotiated"] == "binary"
    for key in ("received", "accepted", "dropped_late", "buffer_pushed",
                "buffer_dropped_late", "client_sent"):
        assert binary_outcome[key] == text_outcome[key], (
            f"seed {seed}: {key} diverged: "
            f"binary {binary_outcome[key]} vs text {text_outcome[key]}"
        )
    # Something interesting must actually have happened.
    assert text_outcome["received"] > 100

    for name in SIGNALS:
        t_times, t_vals = text_traces[name]
        b_times, b_vals = binary_traces[name]
        # Byte-identical floats, not approximately equal: the decision
        # surface (time + delay <= now) is exact comparison.
        np.testing.assert_array_equal(b_times, t_times)
        np.testing.assert_array_equal(b_vals, t_vals)


@pytest.mark.parametrize("seed", (0, 2))
def test_some_drops_occur_in_equivalence_runs(seed):
    """Guard the guard: the schedule must exercise the late-drop edge,
    otherwise the equivalence above proves nothing about it."""
    outcome, _ = run_schedule("binary", seed)
    assert outcome["dropped_late"] > 0
    assert outcome["accepted"] > 0
