"""Randomized failover equivalence: recovery must be invisible.

The acceptance suite for the fault-tolerant telemetry plane.  For each
seed, a randomized multi-signal schedule runs twice through the same
supervised sharded rig — once clean (the oracle) and once under
scripted faults — and the faulted run must converge to the oracle
**byte for byte**: every trace column (times, raw, filtered), every
aggregate, every Section 4.4 accept/late-drop decision and the summed
ingest counters.

Three fault roles are exercised:

* **shard faults** (kill / stall) — the supervisor's WAL + heartbeat +
  replay-catch-up machinery must restore the shard exactly;
* **client link faults** (drop / partition / stall / kill via
  :class:`FaultyLink`, plus reconnect) — every sample the server
  *accepts* appears exactly once, no duplication, and samples are lost
  only to scripted link damage;
* **server session kill** — the server drops the session; the client
  reconnects with backoff, re-interns its names and resumes; the
  disconnect reason is recorded.

Recovery is also *bounded*: a dead shard restarts within
``(miss_threshold + 1)`` monitor intervals of the fault.
"""

import random

import numpy as np
import pytest

from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import (
    FaultPlan,
    ProcessShardSupervisor,
    ScopeClient,
    ScopeServer,
    ShardSupervisor,
    faulty_pair,
    memory_pair,
    shard_of,
)

pytestmark = pytest.mark.faults

SIGNALS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
N_SHARDS = 3
HEARTBEAT_MS = 50.0
MISS_THRESHOLD = 3
RUN_MS = 3_000.0
TICK_MS = 25.0
SEEDS = range(8)


def factory(manager, shard_id):
    scope = manager.scope_new(f"scope-{shard_id}", period_ms=50, delay_ms=120.0)
    for name in SIGNALS:
        if shard_of(name, N_SHARDS) == shard_id:
            scope.signal_new(buffer_signal(name, filter=0.25))
    scope.set_polling_mode(50)
    scope.start_polling()


def snapshot(sup):
    """Traces, aggregates and ingest counters after a final catch-up."""
    end = sup.loop.clock.now()
    for host in sup.hosts:
        host.advance(end)
    traces = {}
    aggregates = {}
    for shard_id, host in enumerate(sup.hosts):
        scope = host.manager.scope(f"scope-{shard_id}")
        for name in SIGNALS:
            if shard_of(name, N_SHARDS) != shard_id:
                continue
            channel = scope.channel(name)
            traces[name] = (
                channel.times_array().copy(),
                channel.raw_array().copy(),
                channel.values_array().copy(),
            )
            values = channel.values_array()
            aggregates[name] = (
                values.shape[0],
                float(values.sum()) if values.shape[0] else 0.0,
            )
    totals = sup.totals()
    core = {k: totals[k] for k in ("offered", "accepted", "dropped_late")}
    return traces, aggregates, core, totals


def assert_equivalent(seed, oracle, faulted):
    o_traces, o_agg, o_core, _ = oracle
    f_traces, f_agg, f_core, _ = faulted
    for name in SIGNALS:
        for o_col, f_col, label in zip(
            o_traces[name], f_traces[name], ("times", "raw", "filtered")
        ):
            np.testing.assert_array_equal(
                f_col, o_col, err_msg=f"seed {seed}: {name} {label}"
            )
        assert f_agg[name] == o_agg[name], f"seed {seed}: {name} aggregates"
    assert f_core == o_core, f"seed {seed}: ingest counters diverged"


# ----------------------------------------------------------------------
# Role 1: shard faults — supervised restart must be byte-identical
# ----------------------------------------------------------------------


def shard_fault_run(tmp_path, seed, fault_script):
    """Drive a seeded schedule through a supervised rig.

    ``fault_script(loop, sup, rng)`` arms the scripted faults (no-op for
    the oracle).  Returns the snapshot.
    """
    rng = random.Random(seed)
    loop = MainLoop()
    sup = ShardSupervisor(
        loop,
        tmp_path,
        shards=N_SHARDS,
        scope_factory=factory,
        heartbeat_ms=HEARTBEAT_MS,
        miss_threshold=MISS_THRESHOLD,
        segment_samples=rng.choice((64, 256, 1024)),
    )

    def feed(_lost) -> bool:
        now = loop.clock.now()
        for name in SIGNALS:
            n = rng.randrange(0, 4)
            if n == 0:
                continue
            times = sorted(now - rng.uniform(0.0, 240.0) for _ in range(n))
            values = [rng.uniform(-100.0, 100.0) for _ in range(n)]
            sup.push_samples(name, np.asarray(times), np.asarray(values))
        return True

    loop.timeout_add(TICK_MS, feed)
    fault_script(loop, sup, random.Random(seed + 1000))
    loop.run_until(RUN_MS)
    snap = snapshot(sup)
    sup.close()
    return snap


def no_faults(loop, sup, rng):
    pass


@pytest.mark.parametrize("seed", SEEDS)
def test_shard_kill_recovers_byte_identically(seed, tmp_path):
    def script(loop, sup, rng):
        at = rng.uniform(500.0, 2000.0)
        victim = rng.randrange(N_SHARDS)
        loop.timeout_add(at, lambda lost: (sup.crash_shard(victim), False)[1])

    oracle = shard_fault_run(tmp_path / "oracle", seed, no_faults)
    faulted = shard_fault_run(tmp_path / "faulted", seed, script)
    assert_equivalent(seed, oracle, faulted)
    assert faulted[3]["restarts"] == 1
    assert faulted[3]["replayed_samples"] > 0
    # Something interesting happened: real traffic, real late drops.
    assert oracle[2]["offered"] > 200
    assert oracle[2]["dropped_late"] > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_shard_stall_recovers_byte_identically(seed, tmp_path):
    """A stall either clears in time (no restart) or is detected and
    restarted — both must converge to the oracle exactly."""

    def script(loop, sup, rng):
        at = rng.uniform(500.0, 1800.0)
        victim = rng.randrange(N_SHARDS)
        loop.timeout_add(at, lambda lost: (sup.stall_shard(victim), False)[1])
        if rng.random() < 0.5:
            # Sometimes the stall clears before detection.
            clear = at + rng.uniform(10.0, 2 * HEARTBEAT_MS)
            loop.timeout_add(clear, lambda lost: (sup.resume_shard(victim), False)[1])

    oracle = shard_fault_run(tmp_path / "oracle", seed, no_faults)
    faulted = shard_fault_run(tmp_path / "faulted", seed, script)
    assert_equivalent(seed, oracle, faulted)


@pytest.mark.parametrize("seed", (1, 6))
def test_restart_latency_bound(seed, tmp_path):
    """Detection + restart latency ≤ (miss_threshold + 1) monitor ticks."""
    kill_at = 1000.0
    rng = random.Random(seed)
    loop = MainLoop()
    sup = ShardSupervisor(
        loop,
        tmp_path,
        shards=N_SHARDS,
        scope_factory=factory,
        heartbeat_ms=HEARTBEAT_MS,
        miss_threshold=MISS_THRESHOLD,
    )

    def feed(_lost) -> bool:
        now = loop.clock.now()
        for name in SIGNALS:
            sup.push_samples(name, (now,), (rng.random(),))
        return True

    loop.timeout_add(TICK_MS, feed)
    loop.timeout_add(kill_at, lambda lost: (sup.crash_shard(1), False)[1])
    loop.run_until(RUN_MS)
    stats = sup.host(1).stats
    assert stats.restarts == 1
    bound = (MISS_THRESHOLD + 1) * sup.monitor_interval_ms
    assert stats.last_restart_at - kill_at <= bound + 1e-9
    sup.close()


# ----------------------------------------------------------------------
# Role 2: client link faults — exactly-once-or-lost, never duplicated
# ----------------------------------------------------------------------


def link_fault_run(seed, plan_factory):
    """One client streaming unique values through a faultable link.

    Returns (sent_values, displayed_values, client, server).  Every
    sample carries a globally unique value, so duplication and loss are
    detectable per sample on the displayed trace.
    """
    rng = random.Random(seed)
    loop = MainLoop()
    from repro.core.manager import ScopeManager

    manager = ScopeManager(loop)
    scope = manager.scope_new("rig", period_ms=50, delay_ms=200.0)
    scope.signal_new(buffer_signal("alpha"))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)

    links = []

    def connect():
        plan = plan_factory()
        if plan is None:
            near, far = memory_pair(loop.clock)
        else:
            near, far, link, _ = faulty_pair(loop.clock, client_plan=plan)
            links.append(link)
        server.add_client(far)
        return near

    client = ScopeClient(
        connect(),
        loop,
        connect=connect,
        backoff_base_ms=20.0,
        backoff_cap_ms=500.0,
        backoff_seed=seed,
    )

    sent = []

    def feed(_lost) -> bool:
        now = loop.clock.now()
        n = rng.randrange(1, 4)
        values = [float(len(sent) + i) for i in range(n)]
        sent.extend(values)
        client.send_samples("alpha", values, [now] * n)
        return True

    loop.timeout_add(TICK_MS, feed)
    loop.run_until(RUN_MS)
    displayed = scope.channel("alpha").raw_array().tolist()
    return sent, displayed, client, server, links


@pytest.mark.parametrize("seed", SEEDS)
def test_link_faults_never_duplicate_accepted_samples(seed, tmp_path):
    rng = random.Random(seed + 500)
    plans = iter(
        [
            # First connection: scripted chaos, then a kill.
            FaultPlan(seed=seed)
            .drop_next(at=rng.uniform(200, 600), count=rng.randrange(1, 3))
            .stall(900.0, 1000.0)
            .kill(at=rng.uniform(1100.0, 1500.0)),
            # Second connection: one partition window.
            FaultPlan(seed=seed + 1).partition(1800.0, 1900.0),
        ]
    )

    def plan_factory():
        return next(plans, None)  # later reconnects get clean links

    sent, displayed, client, server, links = link_fault_run(seed, plan_factory)

    # Exactly-once: what the scopes display is a strictly increasing
    # subsequence of the unique sent values — nothing ever twice.
    assert len(set(displayed)) == len(displayed), f"seed {seed}: duplicated sample"
    assert set(displayed) <= set(sent)
    # The kill forced at least one reconnect, and traffic resumed after.
    assert client.reconnects >= 1
    assert displayed, "nothing displayed at all"
    assert max(displayed) > sent[len(sent) // 2], (
        f"seed {seed}: no samples accepted after mid-run — reconnect failed"
    )
    # The scripted faults really happened.
    assert any(link.dropped_chunks > 0 for link in links)
    # The server reaped the killed session (EOF semantics on a dead
    # link) instead of keeping a zombie; only the live session remains.
    assert server.disconnect_reasons.get("eof", 0) >= 1
    assert len(server.clients) == 1
    # Client-side ledger accounts for every sample it was offered.
    totals = client.totals()
    assert totals["sent"] + totals["dropped_samples"] + totals["backlog_samples"] == len(
        sent
    )


@pytest.mark.parametrize("seed", (2, 7))
def test_clean_link_is_lossless_end_to_end(seed, tmp_path):
    sent, displayed, client, server, _ = link_fault_run(seed, lambda: None)
    assert client.reconnects == 0
    # Everything old enough to have been polled is displayed exactly once.
    assert len(set(displayed)) == len(displayed)
    settled = [v for v in sent if v in set(displayed)]
    assert len(settled) >= len(sent) - 40  # only the in-flight tail missing


# ----------------------------------------------------------------------
# Role 3: server session kill — reconnect, re-intern, resume, reason
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_server_session_kill_resumes_with_reason(seed, tmp_path):
    rng = random.Random(seed)
    loop = MainLoop()
    from repro.core.manager import ScopeManager

    manager = ScopeManager(loop)
    scope = manager.scope_new("rig", period_ms=50, delay_ms=200.0)
    for name in ("alpha", "beta"):
        scope.signal_new(buffer_signal(name))
    scope.set_polling_mode(50)
    scope.start_polling()
    server = ScopeServer(loop, manager)

    def connect():
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        return near

    client = ScopeClient(
        connect(), loop, connect=connect, backoff_base_ms=20.0, backoff_seed=seed
    )

    sent = []

    def feed(_lost) -> bool:
        now = loop.clock.now()
        name = rng.choice(("alpha", "beta"))
        value = float(len(sent))
        sent.append(value)
        client.send_sample(name, value, now)
        return True

    loop.timeout_add(TICK_MS, feed)

    kill_at = rng.uniform(400.0, 1200.0)

    def kill(_lost) -> bool:
        if server.clients:
            server.disconnect(server.clients[0], reason="server")
        return False

    loop.timeout_add(kill_at, kill)
    loop.run_until(RUN_MS)

    assert client.reconnects == 1
    assert server.disconnect_reasons == {"server": 1}
    # The reconnected session re-interned both names: samples of both
    # signals keep arriving and decoding after the kill.
    displayed = (
        scope.channel("alpha").raw_array().tolist()
        + scope.channel("beta").raw_array().tolist()
    )
    assert len(set(displayed)) == len(displayed)
    assert max(displayed) > len(sent) * 0.8  # traffic flowed to the end
    assert server.totals()["protocol_errors"] == 0


# ----------------------------------------------------------------------
# Role 4: process shard workers — SIGKILL + respawn, byte-identical
# ----------------------------------------------------------------------

PROC_RUN_MS = 1_500.0


def _assert_state_equal(a, b, path=""):
    """Deep equality over nested dict/array snapshot state."""
    if isinstance(a, dict):
        assert isinstance(b, dict) and set(a) == set(b), path
        for key in a:
            _assert_state_equal(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, np.ndarray):
        np.testing.assert_array_equal(b, a, err_msg=path)
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            _assert_state_equal(x, y, f"{path}[{i}]")
    else:
        assert a == b, (path, a, b)


def process_run(tmp_path, seed, kill_at, victim=0, rotate_before_kill=False):
    """One seeded run over real worker processes; returns (totals, states).

    ``kill_at`` is a *virtual* instant: the victim worker takes a real
    ``SIGKILL`` at the first feed tick at or past it.  The final state is
    fetched from the workers themselves via the snapshot control, after
    a drain proves every WAL'd sample was ingested.
    """
    rng = random.Random(seed)
    loop = MainLoop()
    sup = ProcessShardSupervisor(
        loop,
        tmp_path,
        shards=N_SHARDS,
        scope_factory=factory,
        monitor_interval_ms=HEARTBEAT_MS,
        heartbeat_s=5.0,
        segment_samples=256,
    )
    killed = False
    with sup:

        def feed(_lost) -> bool:
            nonlocal killed
            now = loop.clock.now()
            if kill_at is not None and not killed and now >= kill_at:
                if rotate_before_kill:
                    for shard_id in range(N_SHARDS):
                        sup.snapshot_shard(shard_id)
                sup.kill_shard(victim)
                killed = True
            for name in SIGNALS:
                n = rng.randrange(0, 4)
                if n == 0:
                    continue
                times = sorted(now - rng.uniform(0.0, 240.0) for _ in range(n))
                values = [rng.uniform(-100.0, 100.0) for _ in range(n)]
                sup.push_samples(name, np.asarray(times), np.asarray(values))
            return True

        loop.timeout_add(TICK_MS, feed)
        loop.run_until(PROC_RUN_MS)
        sup.drain(timeout_s=120.0)
        totals = sup.totals()
        states = {i: sup.snapshot_state(i) for i in range(N_SHARDS)}
    return totals, states


def assert_process_equivalent(seed, oracle, faulted):
    o_totals, o_states = oracle
    f_totals, f_states = faulted
    for key in ("offered", "accepted", "dropped_late"):
        assert f_totals[key] == o_totals[key], f"seed {seed}: {key} diverged"
    for shard_id in o_states:
        _assert_state_equal(
            o_states[shard_id]["manager"],
            f_states[shard_id]["manager"],
            f"seed {seed} shard {shard_id}",
        )
        assert o_states[shard_id]["stats"] == f_states[shard_id]["stats"]


@pytest.mark.distributed
@pytest.mark.parametrize("seed", (3, 11))
def test_process_worker_sigkill_recovers_byte_identically(seed, tmp_path):
    """kill -9 mid-stream, respawn + WAL replay == a run that never died."""
    rng = random.Random(seed + 2000)
    kill_at = rng.uniform(400.0, 1100.0)
    victim = rng.randrange(N_SHARDS)
    oracle = process_run(tmp_path / "oracle", seed, kill_at=None)
    faulted = process_run(tmp_path / "faulted", seed, kill_at, victim=victim)
    assert_process_equivalent(seed, oracle, faulted)
    assert faulted[0]["restarts"] == 1
    assert faulted[0]["replayed_samples"] > 0
    assert oracle[0]["offered"] > 150
    assert oracle[0]["dropped_late"] > 0


@pytest.mark.distributed
def test_process_worker_kill_after_rotation_recovers(tmp_path):
    """Snapshot + WAL rotation, then SIGKILL: restore = state file +
    suffix replay, still byte-identical to the unfailed oracle."""
    seed = 5
    oracle = process_run(tmp_path / "oracle", seed, kill_at=None)
    faulted = process_run(
        tmp_path / "faulted", seed, kill_at=700.0, victim=1, rotate_before_kill=True
    )
    assert_process_equivalent(seed, oracle, faulted)
    assert faulted[0]["restarts"] == 1
