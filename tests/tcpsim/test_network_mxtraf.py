"""Tests for topology assembly and the mxtraf orchestrator."""

import pytest

from repro.tcpsim import (
    Engine,
    Mxtraf,
    MxtrafConfig,
    Network,
    NetworkConfig,
)
from repro.tcpsim.queuemgmt import DropTailQueue, REDQueue


def fast_config(**kwargs):
    """A small/fast path so tests run in milliseconds of wall time."""
    defaults = dict(
        bandwidth_pkts_per_sec=500.0,
        prop_delay_ms=10.0,
        ack_delay_ms=10.0,
        droptail_capacity=15,
    )
    defaults.update(kwargs)
    return NetworkConfig(**defaults)


class TestNetwork:
    def test_queue_policy_selection(self):
        eng = Engine()
        assert isinstance(Network(eng, fast_config(queue="droptail")).queue, DropTailQueue)
        assert isinstance(Network(Engine(), fast_config(queue="red")).queue, REDQueue)
        with pytest.raises(ValueError):
            Network(Engine(), fast_config(queue="codel"))

    def test_single_flow_transfers_data(self):
        eng = Engine()
        net = Network(eng, fast_config())
        net.create_flow()
        eng.advance_to(5000)
        assert net.total_delivered() > 100

    def test_single_flow_saturates_link(self):
        eng = Engine()
        net = Network(eng, fast_config())
        net.create_flow()
        eng.advance_to(20_000)
        # 500 pkt/s for 20 s = 10_000 packets; expect most of it.
        assert net.total_delivered() > 7000

    def test_bounded_flow_completes_and_stops(self):
        eng = Engine()
        net = Network(eng, fast_config())
        flow = net.create_flow(total_segments=50)
        eng.advance_to(10_000)
        assert flow.finished
        assert net.total_delivered() == 50

    def test_remove_flow_stops_traffic(self):
        eng = Engine()
        net = Network(eng, fast_config())
        flow = net.create_flow()
        eng.advance_to(1000)
        net.remove_flow(flow)
        delivered = net.total_delivered()
        eng.advance_to(3000)
        # In-flight stragglers may land, nothing more.
        assert net.total_delivered() == delivered

    def test_two_flows_share_the_link(self):
        eng = Engine()
        net = Network(eng, fast_config(seed=5))
        f1 = net.create_flow(start_jitter_ms=50)
        f2 = net.create_flow(start_jitter_ms=50)
        eng.advance_to(30_000)
        a = f1.stats.acked_segments
        b = f2.stats.acked_segments
        assert a > 0 and b > 0
        assert min(a, b) / max(a, b) > 0.1  # no total starvation

    def test_queue_occupancy_signal(self):
        eng = Engine()
        net = Network(eng, fast_config())
        net.create_flow()
        eng.advance_to(3000)
        occ = net.queue_occupancy()
        assert 0 <= occ <= net.config.droptail_capacity

    def test_rtt_floor(self):
        net = Network(Engine(), fast_config())
        assert net.rtt_floor_ms == pytest.approx(10 + 10 + 2.0)


class TestMxtraf:
    def test_initial_elephants(self):
        eng = Engine()
        net = Network(eng, fast_config())
        mx = Mxtraf(net, MxtrafConfig(elephants=4))
        assert mx.elephants == 4
        assert mx.elephants_cell.value == 4

    def test_set_elephants_up_and_down(self):
        eng = Engine()
        net = Network(eng, fast_config())
        mx = Mxtraf(net, MxtrafConfig(elephants=4))
        eng.advance_to(1000)
        mx.set_elephants(8)
        assert mx.elephants == 8
        mx.set_elephants(2)
        assert mx.elephants == 2
        assert mx.elephants_cell.value == 2
        assert len(net.flows) == 2

    def test_negative_count_rejected(self):
        mx = Mxtraf(Network(Engine(), fast_config()), MxtrafConfig(elephants=1))
        with pytest.raises(ValueError):
            mx.set_elephants(-1)

    def test_watched_flow(self):
        mx = Mxtraf(Network(Engine(), fast_config()), MxtrafConfig(elephants=3))
        assert mx.watched_flow() is mx.elephant_flows[0]
        assert mx.watched_flow(2) is mx.elephant_flows[2]

    def test_watched_flow_empty(self):
        mx = Mxtraf(Network(Engine(), fast_config()), MxtrafConfig(elephants=0))
        with pytest.raises(IndexError):
            mx.watched_flow()

    def test_get_cwnd_hook(self):
        mx = Mxtraf(Network(Engine(), fast_config()), MxtrafConfig(elephants=1))
        assert mx.get_cwnd() == mx.watched_flow().cwnd

    def test_mice_launch_at_rate(self):
        eng = Engine()
        net = Network(eng, fast_config())
        mx = Mxtraf(
            net, MxtrafConfig(elephants=0, mice_per_sec=10.0, mouse_segments=5)
        )
        mx.start_mice()
        eng.advance_to(5000)
        assert mx.mice_started == pytest.approx(50, rel=0.5)
        mx.stop_mice()
        started = mx.mice_started
        eng.advance_to(10_000)
        assert mx.mice_started == started

    def test_mice_require_positive_rate(self):
        mx = Mxtraf(Network(Engine(), fast_config()), MxtrafConfig(elephants=0))
        with pytest.raises(ValueError):
            mx.start_mice()

    def test_control_parameters_drive_traffic(self):
        """The Figure 3 window can retune the mix live."""
        eng = Engine()
        net = Network(eng, fast_config())
        mx = Mxtraf(net, MxtrafConfig(elephants=4))
        store = mx.control_parameters()
        store.set("elephants", 10)
        assert mx.elephants == 10
        store.set("mice_per_sec", 5.0)
        assert mx.config.mice_per_sec == 5.0
        eng.advance_to(2000)
        assert mx.mice_started > 0
        store.set("mice_per_sec", 0.0)


class TestFigureDynamics:
    """Scaled-down versions of the Figure 4/5 headline behaviour."""

    def run(self, queue, ecn, seconds=20):
        eng = Engine()
        # Harsh contention (10 flows, 8-packet buffer) so DropTail loss
        # bursts reliably force timeouts within a short test run.
        net = Network(
            eng, fast_config(queue=queue, ecn=ecn, seed=2, droptail_capacity=8)
        )
        mx = Mxtraf(net, MxtrafConfig(elephants=10))
        watched = mx.watched_flow()
        t = 0.0
        while t < seconds * 1000:
            t += 50
            eng.advance_to(t)
            watched.record_cwnd()
        return net, watched

    def test_droptail_tcp_times_out(self):
        net, watched = self.run("droptail", ecn=False)
        assert net.total_timeouts() > 0
        assert min(watched.stats.cwnd_history) == 1.0

    def test_red_ecn_avoids_timeouts(self):
        net, watched = self.run("red", ecn=True)
        assert watched.stats.timeouts == 0
        assert min(watched.stats.cwnd_history) > 1.0
        assert watched.stats.ecn_reductions > 0

    def test_doubling_elephants_halves_per_flow_share(self):
        eng = Engine()
        net = Network(eng, fast_config(queue="red", ecn=True, seed=2))
        mx = Mxtraf(net, MxtrafConfig(elephants=4))
        watched = mx.watched_flow()
        samples_before, samples_after = [], []
        t = 0.0
        while t < 40_000:
            t += 50
            eng.advance_to(t)
            if 10_000 < t <= 20_000:
                samples_before.append(watched.cwnd)
            elif t > 30_000:
                samples_after.append(watched.cwnd)
            if t == 20_000:
                mx.set_elephants(8)
        mean_before = sum(samples_before) / len(samples_before)
        mean_after = sum(samples_after) / len(samples_after)
        assert mean_after < mean_before
        assert mean_after / mean_before == pytest.approx(0.5, abs=0.3)
