"""Tests for the bottleneck link and the ACK delay line."""

import pytest

from repro.tcpsim.engine import Engine
from repro.tcpsim.link import BottleneckLink, DelayLine
from repro.tcpsim.packet import Ack, Packet
from repro.tcpsim.queuemgmt import DropTailQueue


def pkt(seq=0):
    return Packet(flow_id=1, seq=seq)


class TestBottleneckLink:
    def test_validation(self):
        eng = Engine()
        q = DropTailQueue(10)
        with pytest.raises(ValueError):
            BottleneckLink(eng, q, 0, 10)
        with pytest.raises(ValueError):
            BottleneckLink(eng, q, 100, -1)

    def test_delivery_after_service_plus_propagation(self):
        eng = Engine()
        arrivals = []
        link = BottleneckLink(
            eng, DropTailQueue(10), bandwidth_pkts_per_sec=1000,  # 1 ms/pkt
            prop_delay_ms=40, deliver=lambda p: arrivals.append((eng.now, p.seq)),
        )
        link.send(pkt(seq=5))
        eng.run_all()
        assert arrivals == [(41.0, 5)]

    def test_serialisation_spaces_back_to_back_packets(self):
        eng = Engine()
        arrivals = []
        link = BottleneckLink(
            eng, DropTailQueue(10), 1000, 0,
            deliver=lambda p: arrivals.append(eng.now),
        )
        for i in range(3):
            link.send(pkt(seq=i))
        eng.run_all()
        assert arrivals == [1.0, 2.0, 3.0]  # one per service time

    def test_bandwidth_sets_service_rate(self):
        eng = Engine()
        n = 50
        done = []
        link = BottleneckLink(
            eng, DropTailQueue(100), bandwidth_pkts_per_sec=500,  # 2 ms/pkt
            prop_delay_ms=0, deliver=lambda p: done.append(eng.now),
        )
        for i in range(n):
            link.send(pkt(seq=i))
        eng.run_all()
        assert done[-1] == pytest.approx(n * 2.0)

    def test_queue_overflow_drops(self):
        eng = Engine()
        link = BottleneckLink(eng, DropTailQueue(5), 1000, 0)
        results = [link.send(pkt(seq=i)) for i in range(10)]
        # First packet enters service immediately, queue holds 5 more.
        assert results.count(True) >= 5
        assert results.count(False) >= 1

    def test_idle_link_goes_quiet(self):
        eng = Engine()
        link = BottleneckLink(eng, DropTailQueue(5), 1000, 0)
        link.send(pkt())
        eng.run_all()
        assert not link.busy
        assert link.forwarded == 1

    def test_rtt_floor(self):
        eng = Engine()
        link = BottleneckLink(eng, DropTailQueue(5), 1000, 40)
        assert link.rtt_floor_ms == pytest.approx(41.0)


class TestDelayLine:
    def test_pure_delay(self):
        eng = Engine()
        got = []
        line = DelayLine(eng, 50, deliver=lambda a: got.append(eng.now))
        line.send(Ack(flow_id=1, ack_seq=3))
        eng.run_all()
        assert got == [50.0]

    def test_no_reordering(self):
        eng = Engine()
        got = []
        line = DelayLine(eng, 50, deliver=lambda a: got.append(a.ack_seq))
        line.send(Ack(flow_id=1, ack_seq=1))
        eng.after(1, lambda: line.send(Ack(flow_id=1, ack_seq=2)))
        eng.run_all()
        assert got == [1, 2]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayLine(Engine(), -1)
