"""Tests for SACK loss recovery."""

import pytest

from repro.tcpsim.engine import Engine
from repro.tcpsim.packet import Packet
from repro.tcpsim.tcp import TcpFlow, TcpReceiver


class Harness:
    """Same perfect-pipe harness as test_tcp, with SACK switchable."""

    def __init__(self, sack=True, awnd=64.0):
        self.engine = Engine()
        self.sent = []
        self.flow = TcpFlow(
            self.engine, 1, transmit=self.sent.append, awnd=awnd, sack=sack
        )
        self.receiver = TcpReceiver(1)

    # The harness batches a whole RTT of ACKs per call; keep its RTT
    # well inside MIN_RTO so multi-round recoveries are not interrupted
    # by spurious timeouts that a continuously-ACKed network would not
    # see (the event-driven simulator in repro.tcpsim.network delivers
    # ACKs continuously and does not need this care).
    def deliver_all(self, rtt_ms=50.0, drop_seqs=()):
        packets, self.sent[:] = list(self.sent), []
        acks = []
        for p in packets:
            if p.seq in drop_seqs and not p.retransmit:
                continue
            acks.append(self.receiver.on_packet(p, self.engine.now))
        self.engine.advance_to(self.engine.now + rtt_ms)
        for a in acks:
            self.flow.on_ack(a)


class TestSackReceiver:
    def test_ack_carries_out_of_order_holdings(self):
        r = TcpReceiver(1)
        r.on_packet(Packet(flow_id=1, seq=0), 0)
        ack = r.on_packet(Packet(flow_id=1, seq=3), 0)
        assert ack.ack_seq == 1
        assert ack.sacked == (3,)
        ack = r.on_packet(Packet(flow_id=1, seq=5), 0)
        assert ack.sacked == (3, 5)

    def test_holdings_drain_after_repair(self):
        r = TcpReceiver(1)
        r.on_packet(Packet(flow_id=1, seq=1), 0)
        ack = r.on_packet(Packet(flow_id=1, seq=0), 0)
        assert ack.ack_seq == 2
        assert ack.sacked == ()


class TestSackRecovery:
    def grow(self, h, rounds=4):
        h.flow.start()
        for _ in range(rounds):
            h.deliver_all()

    def test_multi_loss_window_repaired_without_timeout(self):
        """Two losses in one window: NewReno needs two RTTs of partial
        ACKs; SACK repairs both holes and neither strategy should RTO —
        but SACK must do it without ever waiting on a partial ACK."""
        h = Harness(sack=True)
        self.grow(h)
        base = h.flow.snd_una
        drops = {base, base + 2}
        h.deliver_all(drop_seqs=drops)
        assert h.flow.in_recovery
        # Drive recovery to completion.
        for _ in range(6):
            h.deliver_all()
            if not h.flow.in_recovery:
                break
        assert not h.flow.in_recovery
        assert h.flow.stats.timeouts == 0
        assert h.flow.snd_una > base + 2

    def test_repairs_skip_sacked_segments(self):
        h = Harness(sack=True)
        self.grow(h)
        base = h.flow.snd_una
        h.deliver_all(drop_seqs={base, base + 3})
        repaired = {p.seq for p in h.sent if p.retransmit}
        h.deliver_all()
        repaired |= {p.seq for p in h.sent if p.retransmit}
        # Only true holes get retransmitted, never sacked segments.
        assert base in repaired
        assert all(seq in (base, base + 3) for seq in repaired)

    def test_no_new_data_during_sack_recovery(self):
        h = Harness(sack=True)
        self.grow(h)
        base = h.flow.snd_una
        high_before = h.flow.high_seq
        h.deliver_all(drop_seqs={base})
        assert h.flow.in_recovery
        h.deliver_all()  # more dupacks / repairs while still recovering
        sent_new = [p for p in h.sent if not p.retransmit and p.seq >= high_before]
        if h.flow.in_recovery:
            assert sent_new == []

    def test_heavy_loss_fewer_timeouts_than_newreno(self):
        """The aggregate contrast, deterministic single-flow version:
        drop a burst of 5 segments from a grown window."""

        def run(sack):
            h = Harness(sack=sack)
            self.grow(h, rounds=4)
            base = h.flow.snd_una
            drops = {base + i for i in range(0, 10, 2)}
            h.deliver_all(drop_seqs=drops)
            for _ in range(20):
                h.deliver_all()
                self_time = h.engine.now
                h.engine.advance_to(self_time + 1)
            # Give timers a chance to fire if recovery stalled.
            h.engine.advance_to(h.engine.now + 10_000)
            h.deliver_all()
            return h.flow.stats.timeouts

        assert run(sack=True) <= run(sack=False)

    def test_sack_state_cleared_after_recovery(self):
        h = Harness(sack=True)
        self.grow(h)
        base = h.flow.snd_una
        h.deliver_all(drop_seqs={base})
        for _ in range(6):
            h.deliver_all()
            if not h.flow.in_recovery:
                break
        assert not h.flow.in_recovery
        assert h.flow._rtx_done == set()

    def test_non_sack_flow_ignores_sack_blocks(self):
        h = Harness(sack=False)
        self.grow(h)
        base = h.flow.snd_una
        h.deliver_all(drop_seqs={base})
        assert h.flow._sacked == set()
        # NewReno still recovers via partial acks.
        for _ in range(6):
            h.deliver_all()
        assert h.flow.snd_una > base
