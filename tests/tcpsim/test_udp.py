"""Tests for UDP CBR flows and their place in the mxtraf mix."""

import pytest

from repro.tcpsim import Engine, Mxtraf, MxtrafConfig, Network, NetworkConfig
from repro.tcpsim.packet import Packet
from repro.tcpsim.udp import UdpFlow, UdpSink


def net(**kwargs):
    defaults = dict(
        bandwidth_pkts_per_sec=500.0,
        prop_delay_ms=10.0,
        ack_delay_ms=10.0,
        droptail_capacity=15,
    )
    defaults.update(kwargs)
    eng = Engine()
    return eng, Network(eng, NetworkConfig(**defaults))


class TestUdpFlow:
    def test_rate_validation(self):
        eng = Engine()
        with pytest.raises(ValueError):
            UdpFlow(eng, 1, lambda p: True, 0)

    def test_sends_at_configured_rate(self):
        eng = Engine()
        sent = []
        flow = UdpFlow(eng, 1, lambda p: sent.append(p) or True, 100.0)
        flow.start()
        eng.advance_to(1000)
        assert len(sent) == pytest.approx(100, abs=1)
        assert [p.seq for p in sent] == list(range(len(sent)))

    def test_unresponsive_to_drops(self):
        """The defining property: drops do not slow a CBR source."""
        eng = Engine()
        flow = UdpFlow(eng, 1, lambda p: False, 100.0)  # everything drops
        flow.start()
        eng.advance_to(1000)
        assert flow.sent == pytest.approx(100, abs=1)
        assert flow.dropped_at_queue == flow.sent

    def test_set_rate_live(self):
        eng = Engine()
        sent = []
        flow = UdpFlow(eng, 1, lambda p: sent.append(p) or True, 10.0)
        flow.start()
        eng.advance_to(1000)
        slow = len(sent)
        flow.set_rate(100.0)
        eng.advance_to(2000)
        assert len(sent) - slow == pytest.approx(100, abs=2)

    def test_stop(self):
        eng = Engine()
        sent = []
        flow = UdpFlow(eng, 1, lambda p: sent.append(p) or True, 100.0)
        flow.start()
        eng.advance_to(500)
        flow.stop()
        frozen = len(sent)
        eng.advance_to(2000)
        assert len(sent) == frozen


class TestUdpSink:
    def test_counts_deliveries(self):
        sink = UdpSink(7)
        sink.on_packet(Packet(flow_id=7, seq=0), 0.0)
        sink.on_packet(Packet(flow_id=7, seq=1), 1.0)
        assert sink.received == 2
        assert sink.last_seq == 1

    def test_wrong_flow_rejected(self):
        with pytest.raises(ValueError):
            UdpSink(7).on_packet(Packet(flow_id=8, seq=0), 0.0)


class TestNetworkIntegration:
    def test_udp_delivers_through_bottleneck(self):
        eng, network = net()
        network.create_udp_flow(100.0)
        eng.advance_to(5000)
        assert network.total_udp_delivered() > 400

    def test_udp_loss_when_overdriven(self):
        eng, network = net()
        flow = network.create_udp_flow(2000.0)  # 4x the link rate
        eng.advance_to(5000)
        delivered = network.total_udp_delivered()
        assert delivered < flow.sent
        # The link can only carry ~500 pkt/s.
        assert delivered <= 500 * 5 + 50

    def test_udp_steals_bandwidth_from_tcp(self):
        """The stress-testing role: CBR load squeezes TCP goodput."""
        eng_a, quiet = net(seed=3)
        quiet.create_flow()
        eng_a.advance_to(20_000)
        tcp_alone = quiet.total_delivered()

        eng_b, contended = net(seed=3)
        contended.create_flow()
        contended.create_udp_flow(300.0)  # 60 % of the link
        eng_b.advance_to(20_000)
        tcp_squeezed = contended.total_delivered()

        assert tcp_squeezed < 0.75 * tcp_alone
        assert contended.total_udp_delivered() > 0

    def test_remove_udp_flow(self):
        eng, network = net()
        flow = network.create_udp_flow(100.0)
        eng.advance_to(1000)
        network.remove_udp_flow(flow)
        count = network.total_udp_delivered()
        eng.advance_to(3000)
        # Stragglers in flight may land; no new traffic.
        assert network.total_udp_delivered() <= count + 5


class TestMxtrafMix:
    def test_udp_knob(self):
        eng, network = net()
        mx = Mxtraf(network, MxtrafConfig(elephants=2, udp_pkts_per_sec=100.0))
        assert mx.udp_rate == 100.0
        eng.advance_to(2000)
        assert network.total_udp_delivered() > 100
        mx.set_udp_rate(0)
        assert mx.udp_flow is None

    def test_udp_control_parameter(self):
        eng, network = net()
        mx = Mxtraf(network, MxtrafConfig(elephants=2))
        store = mx.control_parameters()
        assert store.get("udp_pkts_per_sec") == 0.0
        store.set("udp_pkts_per_sec", 200.0)
        assert mx.udp_rate == 200.0
        eng.advance_to(1000)
        assert network.total_udp_delivered() > 0
        store.set("udp_pkts_per_sec", 0.0)
        assert mx.udp_flow is None

    def test_negative_rate_rejected(self):
        eng, network = net()
        mx = Mxtraf(network, MxtrafConfig(elephants=1))
        with pytest.raises(ValueError):
            mx.set_udp_rate(-1)
