"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.tcpsim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = Engine()
        order = []
        eng.at(30, lambda: order.append("c"))
        eng.at(10, lambda: order.append("a"))
        eng.at(20, lambda: order.append("b"))
        eng.run_all()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        eng = Engine()
        order = []
        eng.at(10, lambda: order.append(1))
        eng.at(10, lambda: order.append(2))
        eng.run_all()
        assert order == [1, 2]

    def test_after_is_relative(self):
        eng = Engine(start_ms=100)
        times = []
        eng.after(25, lambda: times.append(eng.now))
        eng.run_all()
        assert times == [125.0]

    def test_past_scheduling_rejected(self):
        eng = Engine(start_ms=100)
        with pytest.raises(ValueError):
            eng.at(50, lambda: None)
        with pytest.raises(ValueError):
            eng.after(-1, lambda: None)

    def test_events_can_schedule_events(self):
        eng = Engine()
        hits = []

        def chain(n):
            hits.append(eng.now)
            if n > 0:
                eng.after(10, lambda: chain(n - 1))

        eng.after(10, lambda: chain(3))
        eng.run_all()
        assert hits == [10.0, 20.0, 30.0, 40.0]


class TestAdvanceTo:
    def test_advances_clock_exactly(self):
        eng = Engine()
        eng.advance_to(123.5)
        assert eng.now == 123.5

    def test_runs_only_due_events(self):
        eng = Engine()
        ran = []
        eng.at(10, lambda: ran.append(10))
        eng.at(50, lambda: ran.append(50))
        executed = eng.advance_to(30)
        assert ran == [10]
        assert executed == 1
        assert eng.pending == 1

    def test_inclusive_boundary(self):
        eng = Engine()
        ran = []
        eng.at(30, lambda: ran.append(1))
        eng.advance_to(30)
        assert ran == [1]

    def test_cascading_events_inside_window(self):
        eng = Engine()
        ran = []

        def first():
            ran.append("first")
            eng.after(5, lambda: ran.append("second"))

        eng.at(10, first)
        eng.advance_to(20)
        assert ran == ["first", "second"]

    def test_backwards_rejected(self):
        eng = Engine()
        eng.advance_to(100)
        with pytest.raises(ValueError):
            eng.advance_to(50)

    def test_counters(self):
        eng = Engine()
        eng.at(1, lambda: None)
        eng.at(2, lambda: None)
        eng.run_all()
        assert eng.scheduled == 2
        assert eng.executed == 2

    @given(st.lists(st.floats(min_value=0, max_value=1000), max_size=50))
    def test_now_is_monotone_under_any_schedule(self, times):
        eng = Engine()
        observed = []
        for t in times:
            eng.at(t, lambda: observed.append(eng.now))
        eng.run_all()
        assert observed == sorted(observed)


class TestExecutedCountOnError:
    def test_advance_to_counts_events_before_exception(self):
        eng = Engine()
        eng.at(1.0, lambda: None)

        def boom():
            raise RuntimeError("bad event")

        eng.at(2.0, boom)
        with pytest.raises(RuntimeError):
            eng.advance_to(5.0)
        assert eng.executed == 1

    def test_run_all_counts_events_before_exception(self):
        eng = Engine()
        eng.at(1.0, lambda: None)
        eng.at(2.0, lambda: (_ for _ in ()).throw(RuntimeError("bad")))
        with pytest.raises(RuntimeError):
            eng.run_all()
        assert eng.executed == 1
