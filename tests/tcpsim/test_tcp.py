"""Tests for the TCP Reno/NewReno sender and receiver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tcpsim.engine import Engine
from repro.tcpsim.packet import Ack, ECN, Packet
from repro.tcpsim.tcp import (
    INITIAL_CWND,
    MIN_RTO_MS,
    TcpFlow,
    TcpReceiver,
)


class Harness:
    """A sender wired to a perfect (or lossy) one-packet-at-a-time pipe."""

    def __init__(self, ecn=False, total=None, awnd=64.0):
        self.engine = Engine()
        self.sent = []
        self.flow = TcpFlow(
            self.engine, 1, transmit=self.sent.append, ecn=ecn,
            total_segments=total, awnd=awnd,
        )
        self.receiver = TcpReceiver(1)

    def deliver_all(self, rtt_ms=100.0, drop_seqs=(), mark_seqs=()):
        """Deliver pending packets, produce ACKs, deliver them after rtt."""
        packets, self.sent[:] = list(self.sent), []
        acks = []
        for p in packets:
            if p.seq in drop_seqs and not p.retransmit:
                continue
            if p.seq in mark_seqs and p.ecn_capable:
                p.mark_ce()
            acks.append(self.receiver.on_packet(p, self.engine.now))
        self.engine.advance_to(self.engine.now + rtt_ms)
        for a in acks:
            self.flow.on_ack(a)


class TestReceiver:
    def test_in_order_delivery(self):
        r = TcpReceiver(1)
        ack = r.on_packet(Packet(flow_id=1, seq=0), 0)
        assert ack.ack_seq == 1
        assert r.delivered == 1

    def test_out_of_order_buffered(self):
        r = TcpReceiver(1)
        ack = r.on_packet(Packet(flow_id=1, seq=2), 0)
        assert ack.ack_seq == 0  # dupack for the hole
        ack = r.on_packet(Packet(flow_id=1, seq=0), 0)
        assert ack.ack_seq == 1
        ack = r.on_packet(Packet(flow_id=1, seq=1), 0)
        assert ack.ack_seq == 3  # cumulative jump over buffered seq 2

    def test_duplicate_receive_counted(self):
        r = TcpReceiver(1)
        r.on_packet(Packet(flow_id=1, seq=0), 0)
        r.on_packet(Packet(flow_id=1, seq=0), 0)
        assert r.dup_receives == 1

    def test_ce_mark_echoed(self):
        r = TcpReceiver(1)
        p = Packet(flow_id=1, seq=0, ecn=ECN.ECT)
        p.mark_ce()
        ack = r.on_packet(p, 0)
        assert ack.ece is True

    def test_wrong_flow_rejected(self):
        r = TcpReceiver(1)
        with pytest.raises(ValueError):
            r.on_packet(Packet(flow_id=2, seq=0), 0)


class TestSlowStartAndCA:
    def test_initial_window(self):
        h = Harness()
        h.flow.start()
        assert len(h.sent) == int(INITIAL_CWND)

    def test_slow_start_doubles_per_rtt(self):
        h = Harness()
        h.flow.start()
        h.deliver_all()
        assert h.flow.cwnd == pytest.approx(4.0)
        h.deliver_all()
        assert h.flow.cwnd == pytest.approx(8.0)

    def test_congestion_avoidance_linear(self):
        h = Harness()
        h.flow.ssthresh = 4.0
        h.flow.start()
        while h.flow.cwnd < 4.0:
            h.deliver_all()
        before = h.flow.cwnd
        h.deliver_all()
        # += newly/cwnd per ack batch → roughly +1 per RTT.
        assert before < h.flow.cwnd <= before + 1.01

    def test_awnd_caps_window(self):
        h = Harness(awnd=8.0)
        h.flow.start()
        for _ in range(10):
            h.deliver_all()
        assert h.flow.inflight <= 8

    def test_bounded_transfer_finishes(self):
        h = Harness(total=20)
        h.flow.start()
        for _ in range(20):
            h.deliver_all()
            if h.flow.finished:
                break
        assert h.flow.finished
        assert h.receiver.delivered == 20


class TestFastRetransmit:
    def test_three_dupacks_trigger_fast_retransmit(self):
        h = Harness()
        h.flow.start()
        for _ in range(3):
            h.deliver_all()  # cwnd comfortably > 4
        lost = h.flow.snd_una  # drop the next head-of-window packet
        h.deliver_all(drop_seqs={lost})
        assert h.flow.stats.fast_retransmits == 1
        assert h.flow.in_recovery
        # The retransmitted packet is at the head of the pipe.
        retx = [p for p in h.sent if p.retransmit]
        assert any(p.seq == lost for p in retx)

    def test_recovery_halves_window(self):
        h = Harness()
        h.flow.start()
        for _ in range(3):
            h.deliver_all()
        cwnd_before = h.flow.cwnd
        lost = h.flow.snd_una
        h.deliver_all(drop_seqs={lost})
        h.deliver_all()  # retransmit acked; recovery exits
        assert not h.flow.in_recovery
        assert h.flow.cwnd <= cwnd_before * 0.75
        assert h.flow.cwnd >= 2.0

    def test_no_timeout_during_successful_fast_recovery(self):
        h = Harness()
        h.flow.start()
        for _ in range(3):
            h.deliver_all()
        lost = h.flow.snd_una
        h.deliver_all(drop_seqs={lost})
        h.deliver_all()
        assert h.flow.stats.timeouts == 0


class TestTimeout:
    def test_silence_fires_rto_and_cwnd_collapses_to_one(self):
        """Section 2: 'Both TCP and ECN reduce the congestion window to
        one upon a timeout.'"""
        h = Harness()
        h.flow.start()
        h.deliver_all()
        assert h.flow.cwnd > 1.0
        h.sent.clear()  # everything in flight is lost; no acks ever come
        h.engine.advance_to(h.engine.now + 120_000)
        assert h.flow.stats.timeouts >= 1
        assert min(h.flow.stats.cwnd_history, default=h.flow.cwnd) >= 0
        # cwnd collapsed to 1 at the timeout (before regrowth attempts).
        assert h.flow.cwnd <= 2.0  # still tiny: nothing was ever acked

    def test_rto_backoff_doubles(self):
        h = Harness()
        h.flow.start()
        rto0 = h.flow.rto_ms
        h.sent.clear()
        h.engine.advance_to(h.engine.now + rto0 + 1)
        rto1 = h.flow.rto_ms
        assert rto1 == pytest.approx(rto0 * 2)

    def test_go_back_n_retransmits_lost_window(self):
        h = Harness()
        h.flow.start()
        for _ in range(3):
            h.deliver_all()
        inflight = h.flow.inflight
        assert inflight >= 4
        h.sent.clear()  # lose the entire window
        h.engine.advance_to(h.engine.now + h.flow.rto_ms + 1)
        # Recovery proceeds in slow start from the bottom: eventually the
        # receiver gets everything with no further loss.
        for _ in range(30):
            h.deliver_all()
        assert h.flow.snd_una >= inflight  # the hole is fully repaired
        assert h.flow.stats.timeouts == 1

    def test_recovery_after_timeout_resumes_growth(self):
        h = Harness()
        h.flow.start()
        h.deliver_all()
        h.sent.clear()
        h.engine.advance_to(h.engine.now + h.flow.rto_ms + 1)
        for _ in range(6):
            h.deliver_all()
        assert h.flow.cwnd > 2.0  # regrew past the collapse


class TestECN:
    def test_ece_halves_window_without_retransmit(self):
        h = Harness(ecn=True)
        h.flow.start()
        for _ in range(4):
            h.deliver_all()
        cwnd_before = h.flow.cwnd
        h.deliver_all(mark_seqs={h.flow.snd_una})
        assert h.flow.stats.ecn_reductions == 1
        assert h.flow.cwnd == pytest.approx(max(cwnd_before / 2, 2.0), rel=0.3)
        assert h.flow.stats.retransmits == 0
        assert h.flow.stats.timeouts == 0

    def test_at_most_one_reduction_per_window(self):
        h = Harness(ecn=True)
        h.flow.start()
        for _ in range(4):
            h.deliver_all()
        marked = set(range(h.flow.snd_una, h.flow.snd_una + 4))
        h.deliver_all(mark_seqs=marked)
        assert h.flow.stats.ecn_reductions == 1

    def test_non_ecn_flow_sends_not_ect(self):
        h = Harness(ecn=False)
        h.flow.start()
        assert all(p.ecn is ECN.NOT_ECT for p in h.sent)

    def test_ecn_flow_sends_ect(self):
        h = Harness(ecn=True)
        h.flow.start()
        assert all(p.ecn is ECN.ECT for p in h.sent)


class TestRTTEstimation:
    def test_srtt_tracks_path_rtt(self):
        h = Harness()
        h.flow.start()
        for _ in range(6):
            h.deliver_all(rtt_ms=100.0)
        assert h.flow.srtt_ms == pytest.approx(100.0, rel=0.05)
        assert h.flow.rto_ms >= MIN_RTO_MS

    def test_rto_floor(self):
        h = Harness()
        h.flow.start()
        for _ in range(10):
            h.deliver_all(rtt_ms=1.0)
        assert h.flow.rto_ms >= MIN_RTO_MS


class TestLifecycle:
    def test_stop_silences_flow(self):
        h = Harness()
        h.flow.start()
        h.flow.stop()
        h.sent.clear()
        h.engine.advance_to(h.engine.now + 60_000)
        assert h.sent == []
        assert h.flow.stats.timeouts == 0

    def test_get_cwnd_signal_hook(self):
        h = Harness()
        assert h.flow.get_cwnd() == h.flow.cwnd
        assert h.flow.get_cwnd("ignored", "args") == h.flow.cwnd

    def test_wrong_flow_ack_rejected(self):
        h = Harness()
        with pytest.raises(ValueError):
            h.flow.on_ack(Ack(flow_id=9, ack_seq=0))


class TestInvariants:
    @settings(deadline=None, max_examples=30)
    @given(
        st.sets(st.integers(min_value=0, max_value=200), max_size=40),
        st.integers(min_value=2, max_value=12),
    )
    def test_loss_pattern_never_breaks_invariants(self, drops, rounds):
        """Whatever single-drop pattern the network applies, the sender
        keeps cwnd >= 1 and never delivers data out of order."""
        h = Harness()
        h.flow.start()
        for _ in range(rounds):
            h.deliver_all(drop_seqs=drops)
            assert h.flow.cwnd >= 1.0
            assert h.flow.snd_una <= h.flow.next_seq <= h.flow.high_seq
            assert h.receiver.expected_seq >= h.flow.snd_una - h.flow.inflight - 1
        # Let timers repair anything outstanding, then finish cleanly.
        for _ in range(8):
            h.engine.advance_to(h.engine.now + h.flow.rto_ms + 1)
            h.deliver_all()
        assert h.receiver.delivered == h.receiver.expected_seq
