"""Tests for DropTail and RED queue policies."""

import random

import pytest

from repro.tcpsim.packet import ECN, Packet
from repro.tcpsim.queuemgmt import DropTailQueue, REDQueue


def pkt(ecn=ECN.NOT_ECT, seq=0):
    return Packet(flow_id=1, seq=seq, ecn=ecn)


class TestDropTail:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_fifo_order(self):
        q = DropTailQueue(10)
        q.enqueue(pkt(seq=1), 0)
        q.enqueue(pkt(seq=2), 0)
        assert q.dequeue(0).seq == 1
        assert q.dequeue(0).seq == 2
        assert q.dequeue(0) is None

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(pkt(), 0)
        assert q.enqueue(pkt(), 0)
        assert not q.enqueue(pkt(), 0)
        assert q.stats.dropped == 1
        assert q.stats.enqueued == 2
        assert len(q) == 2

    def test_never_marks(self):
        q = DropTailQueue(5)
        for i in range(10):
            q.enqueue(pkt(ecn=ECN.ECT, seq=i), 0)
        assert q.stats.marked == 0


class TestREDValidation:
    def test_threshold_order(self):
        with pytest.raises(ValueError):
            REDQueue(min_th=10, max_th=5)

    def test_max_p_range(self):
        with pytest.raises(ValueError):
            REDQueue(max_p=0)
        with pytest.raises(ValueError):
            REDQueue(max_p=1.5)

    def test_weight_range(self):
        with pytest.raises(ValueError):
            REDQueue(weight=0)


class TestREDBehaviour:
    def test_below_min_th_never_marks(self):
        q = REDQueue(min_th=5, max_th=15, ecn=True, rng=random.Random(0))
        for i in range(4):
            assert q.enqueue(pkt(ecn=ECN.ECT, seq=i), float(i))
        assert q.stats.marked == 0
        assert q.stats.dropped == 0

    def _drive_to_congestion(self, q, n=500, ecn_capable=True):
        """Enqueue/dequeue keeping the queue long so avg rises."""
        admitted = 0
        for i in range(n):
            p = pkt(ecn=ECN.ECT if ecn_capable else ECN.NOT_ECT, seq=i)
            if q.enqueue(p, float(i)):
                admitted += 1
            if len(q) > 20:  # drain slowly: queue stays congested
                q.dequeue(float(i))
        return admitted

    def test_congestion_marks_ecn_capable(self):
        q = REDQueue(
            min_th=5, max_th=15, max_p=0.2, weight=0.2, ecn=True,
            capacity=60, rng=random.Random(1),
        )
        self._drive_to_congestion(q)
        assert q.stats.marked > 0
        assert q.stats.dropped == 0  # ECN-capable packets never dropped by RED

    def test_congestion_drops_not_ect(self):
        """RFC 3168: not-ECT packets are dropped, not marked."""
        q = REDQueue(
            min_th=5, max_th=15, max_p=0.2, weight=0.2, ecn=True,
            capacity=60, rng=random.Random(1),
        )
        self._drive_to_congestion(q, ecn_capable=False)
        assert q.stats.marked == 0
        assert q.stats.dropped > 0

    def test_ecn_disabled_drops_everything(self):
        q = REDQueue(
            min_th=5, max_th=15, max_p=0.2, weight=0.2, ecn=False,
            capacity=60, rng=random.Random(1),
        )
        self._drive_to_congestion(q)
        assert q.stats.marked == 0
        assert q.stats.dropped > 0

    def test_hard_capacity_always_drops(self):
        q = REDQueue(min_th=50, max_th=100, capacity=3, ecn=True,
                     rng=random.Random(0))
        results = [q.enqueue(pkt(ecn=ECN.ECT, seq=i), 0.0) for i in range(5)]
        assert results == [True, True, True, False, False]

    def test_marked_packets_carry_ce(self):
        q = REDQueue(
            min_th=2, max_th=6, max_p=1.0, weight=1.0, ecn=True,
            capacity=60, rng=random.Random(0),
        )
        # Fill past max_th with instantaneous avg (weight=1): marks all.
        ce_seen = 0
        for i in range(12):
            p = pkt(ecn=ECN.ECT, seq=i)
            q.enqueue(p, 0.0)
            if p.ecn is ECN.CE:
                ce_seen += 1
        assert ce_seen > 0

    def test_avg_decays_when_idle(self):
        q = REDQueue(min_th=5, max_th=15, weight=0.5, rng=random.Random(0))
        for i in range(10):
            q.enqueue(pkt(seq=i), 0.0)
        high = q.avg
        while q.dequeue(0.0) is not None:
            pass
        q.enqueue(pkt(), 1000.0)  # long idle before this arrival
        assert q.avg < high


class TestPacketECN:
    def test_mark_ce_requires_ect(self):
        p = pkt(ecn=ECN.NOT_ECT)
        with pytest.raises(ValueError):
            p.mark_ce()

    def test_mark_ce_transitions(self):
        p = pkt(ecn=ECN.ECT)
        p.mark_ce()
        assert p.ecn is ECN.CE
        assert p.ecn_capable
