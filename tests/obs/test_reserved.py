"""The ``__obs.`` namespace boundary: user pushes rejected everywhere,
trusted ``push_obs`` delivers, queries may read but never define."""

import pytest

from repro.core.manager import RESERVED_PREFIX, ScopeManager
from repro.core.scope import ScopeError
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net.shard import ShardedScopeManager
from repro.query import QueryError, compile_query
from repro.query.errors import QueryCompileError

pytestmark = pytest.mark.obs


def _manager():
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    scope.signal_new(buffer_signal(RESERVED_PREFIX + "hits"))
    return loop, manager, scope


class TestManagerBoundary:
    def test_push_samples_rejects_reserved(self):
        _, manager, _ = _manager()
        with pytest.raises(ScopeError, match="reserved"):
            manager.push_samples(RESERVED_PREFIX + "hits", [1.0], [2.0])

    def test_push_sample_rejects_reserved(self):
        _, manager, _ = _manager()
        with pytest.raises(ScopeError, match="reserved"):
            manager.push_sample(RESERVED_PREFIX + "hits", 1.0, 2.0)

    def test_push_obs_delivers(self):
        _, manager, scope = _manager()
        accepted = manager.push_obs(RESERVED_PREFIX + "hits", [1.0], [2.0])
        assert accepted == 1

    def test_ordinary_names_unaffected(self):
        _, manager, _ = _manager()
        assert manager.push_samples("pkts", [1.0], [2.0]) == 1

    def test_taps_see_obs_pushes(self):
        _, manager, _ = _manager()
        seen = []
        manager.add_tap(lambda name, t, v, now: seen.append(name))
        manager.push_obs(RESERVED_PREFIX + "hits", [1.0], [2.0])
        assert seen == [RESERVED_PREFIX + "hits"]


class TestShardedBoundary:
    def test_sharded_push_samples_rejects(self):
        sharded = ShardedScopeManager(shards=2)
        with pytest.raises(ScopeError, match="reserved"):
            sharded.push_samples(RESERVED_PREFIX + "x", [1.0], [2.0])

    def test_sharded_push_obs_routes(self):
        sharded = ShardedScopeManager(shards=2)
        # No scope carries the name: delivered (to nobody), not rejected.
        assert sharded.push_obs(RESERVED_PREFIX + "x", [1.0], [2.0]) == 0
        assert sharded.totals()["offered"] == 1

    def test_ordinary_push_still_counts(self):
        sharded = ShardedScopeManager(shards=2)
        sharded.push_samples("pkts", [1.0], [2.0])
        assert sharded.totals()["offered"] == 1


class TestSupervisorBoundary:
    def test_supervisor_rejects_before_wal(self, tmp_path):
        from repro.net.supervisor import ShardSupervisor

        loop = MainLoop()

        def factory(manager, shard_id):
            scope = manager.scope_new(f"s{shard_id}", delay_ms=1e12)
            scope.signal_new(buffer_signal("pkts"))

        sup = ShardSupervisor(
            loop, tmp_path, shards=1, scope_factory=factory
        )
        with pytest.raises(ScopeError, match="reserved"):
            sup.push_samples(RESERVED_PREFIX + "x", [1.0], [2.0])
        # Nothing durable was written for the rejected push.
        wal_files = [
            p for p in tmp_path.rglob("*") if p.is_file() and p.stat().st_size
        ]
        assert sup.push_samples("pkts", [1.0], [2.0]) == 1
        wal_files_after = [
            p for p in tmp_path.rglob("*") if p.is_file() and p.stat().st_size
        ]
        assert len(wal_files_after) >= len(wal_files)
        sup.close()

    def test_supervisor_push_obs_skips_wal(self, tmp_path):
        from repro.net.supervisor import ShardSupervisor

        loop = MainLoop()

        def factory(manager, shard_id):
            scope = manager.scope_new(f"s{shard_id}", delay_ms=1e12)
            scope.signal_new(buffer_signal(RESERVED_PREFIX + "hits"))

        sup = ShardSupervisor(loop, tmp_path, shards=1, scope_factory=factory)
        assert sup.push_obs(RESERVED_PREFIX + "hits", [1.0], [2.0]) == 1
        sup.close()


class TestServerBoundary:
    def test_reserved_push_disconnects_session(self):
        from repro.net import ScopeClient, ScopeServer, memory_pair

        loop, manager, _ = _manager()
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        state = server.add_client(far)
        client = ScopeClient(near, loop)
        client.send_samples("pkts", [2.0], [1.0])
        loop.run_until(50.0)
        assert state.connected
        client.send_samples(RESERVED_PREFIX + "hits", [2.0], [1.0])
        loop.run_until(100.0)
        assert not state.connected
        assert state.disconnect_reason == "protocol"
        # The ordinary sample before the violation still counted.
        assert server.totals()["accepted"] == 1


class TestQueryBoundary:
    def test_defining_reserved_output_rejected(self):
        with pytest.raises(QueryCompileError, match="reserved"):
            compile_query("__obs.rate = rate(pkts)")

    def test_default_name_into_reserved_rejected(self):
        from repro.query.compile import compile_query as cq

        with pytest.raises(QueryError, match="reserved"):
            cq("rate(pkts)", default_name="__obs.derived")

    def test_reading_reserved_sources_allowed(self):
        plan = compile_query("drop_rate = rate(__obs.shard0.dropped_late)")
        assert plan.source_names == ["__obs.shard0.dropped_late"]
        assert plan.output_names == ["drop_rate"]

    def test_live_query_over_obs_cannot_feed_back(self):
        """A derived view over __obs.* emits under a plain name — the
        compile-time rejection means no query output can ever land back
        in the reserved namespace and recurse through the publisher."""
        from repro.query import LiveQuery

        _, manager, scope = _manager()
        scope.signal_new(buffer_signal("hit_rate"))
        live = LiveQuery(compile_query("hit_rate = rate(__obs.hits)"), manager)
        outputs = []
        live.on_output(lambda name, t, v: outputs.append(name))
        manager.push_obs("__obs.hits", [0.0, 1000.0], [1.0, 3.0])
        assert outputs == ["hit_rate"]
        assert live.error is None
