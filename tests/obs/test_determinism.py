"""Determinism contracts for the self-instrumentation plane.

Two identical virtual-clock runs must capture byte-identical ``__obs.``
columns, and with obs disabled the primary-signal output must be
byte-identical to a build where the obs package cannot be imported at
all.
"""

import hashlib
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np

from repro.capture.writer import CaptureWriter
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.obs.metrics import MetricsPublisher, MetricsRegistry
import pytest

pytestmark = pytest.mark.obs


def _digest(capture_dir: Path) -> str:
    h = hashlib.sha256()
    for segment in sorted(capture_dir.glob("*.gseg")):
        h.update(segment.name.encode())
        h.update(segment.read_bytes())
    return h.hexdigest()


def _instrumented_run(capture_dir: Path, seed: int) -> str:
    """One fully instrumented run on virtual time, captured to disk."""
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    scope.signal_new(buffer_signal("__obs.loop.dispatch.default"))
    registry = MetricsRegistry()
    assert loop.observe(registry)
    publisher = MetricsPublisher(loop, manager, registry, period_ms=50.0)
    assert publisher.active
    writer = CaptureWriter(capture_dir, segment_samples=64)
    manager.add_tap(writer)
    rng = np.random.default_rng(seed)

    def feed(_lost):
        now = loop.clock.now()
        n = int(rng.integers(1, 5))
        manager.push_samples(
            "pkts", now + np.arange(n, dtype=float), rng.poisson(8.0, n)
        )
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(1000.0)
    writer.close()
    return _digest(capture_dir)


class TestVirtualTimeDeterminism:
    def test_two_runs_capture_identical_obs_columns(self, tmp_path):
        a = _instrumented_run(tmp_path / "a", seed=7)
        b = _instrumented_run(tmp_path / "b", seed=7)
        assert a == b
        # and the capture actually contains reserved-namespace rows
        from repro.capture.reader import CaptureReader

        names = set(CaptureReader(tmp_path / "a").names)
        assert any(n.startswith("__obs.") for n in names)
        assert "pkts" in names

    def test_different_seed_changes_primary_not_layout(self, tmp_path):
        a = _instrumented_run(tmp_path / "a", seed=7)
        b = _instrumented_run(tmp_path / "b", seed=8)
        assert a != b  # the digest is actually sensitive to content


# The primary pipeline, parameterized by environment only.  Written to
# run under a plain interpreter so the "obs package absent" variant can
# block the import machinery before repro loads.
_PRIMARY_SCRIPT = textwrap.dedent(
    """
    import sys

    if "--no-obs" in sys.argv:
        import importlib.abc

        class _Blocker(importlib.abc.MetaPathFinder):
            def find_spec(self, fullname, path=None, target=None):
                if fullname == "repro.obs" or fullname.startswith("repro.obs."):
                    raise ImportError(f"{fullname} blocked for determinism test")
                return None

        sys.meta_path.insert(0, _Blocker())

    import numpy as np
    from repro.capture.writer import CaptureWriter
    from repro.core.manager import ScopeManager
    from repro.core.signal import buffer_signal
    from repro.eventloop.loop import MainLoop
    from repro.net import ScopeClient, ScopeServer, memory_pair

    if "--no-obs" in sys.argv:
        try:
            import repro.obs  # noqa: F401
        except ImportError:
            pass
        else:
            raise SystemExit("blocker failed: repro.obs imported")

    out = sys.argv[1]
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock)
    server.add_client(far)
    client = ScopeClient(near, loop)
    client.subscribe("out = rate(pkts)")
    scope.signal_new(buffer_signal("out"))
    writer = CaptureWriter(out, segment_samples=64)
    manager.add_tap(writer)
    rng = np.random.default_rng(42)

    def feed(_lost):
        now = loop.clock.now()
        client.send_samples("pkts", rng.poisson(8.0, 3), now + np.arange(3.0))
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(1000.0)
    writer.close()
    """
)


class TestDisabledPathEquivalence:
    def test_obs_disabled_matches_obs_never_imported(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONHASHSEED"] = "0"

        env_disabled = dict(env, REPRO_OBS="0")
        disabled_dir = tmp_path / "disabled"
        subprocess.run(
            [sys.executable, "-c", _PRIMARY_SCRIPT, str(disabled_dir)],
            env=env_disabled,
            check=True,
            timeout=120,
        )

        env.pop("REPRO_OBS", None)
        absent_dir = tmp_path / "absent"
        subprocess.run(
            [
                sys.executable,
                "-c",
                _PRIMARY_SCRIPT,
                str(absent_dir),
                "--no-obs",
            ],
            env=env,
            check=True,
            timeout=120,
        )

        assert _digest(disabled_dir) == _digest(absent_dir)
        assert list(disabled_dir.glob("*.gseg"))  # runs actually captured
