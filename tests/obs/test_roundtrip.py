"""The acceptance round-trip: a derived query over ``__obs.*`` columns
is byte-identical between live incremental evaluation and batch
re-execution over the capture of the same run.

This is the dogfooding payoff — telemetry samples are ordinary columnar
samples, so the whole derived-signal machinery works on them unchanged.
"""

import numpy as np

from repro.capture.reader import CaptureReader
from repro.capture.writer import CaptureWriter
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.obs.metrics import MetricsPublisher, MetricsRegistry
from repro.query import LiveQuery, execute
import pytest

pytestmark = pytest.mark.obs

QUERY = "dispatch_rate = rate(__obs.loop.dispatch.default)"


def _instrumented_run(capture_dir):
    """Live run: profiler counters published, captured and derived."""
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    registry = MetricsRegistry()
    assert loop.observe(registry)
    publisher = MetricsPublisher(loop, manager, registry, period_ms=50.0)
    assert publisher.active
    writer = CaptureWriter(capture_dir, segment_samples=64)
    manager.add_tap(writer)
    live = LiveQuery(QUERY, manager)
    emitted = []
    live.on_output(lambda name, t, v: emitted.append((t.copy(), v.copy())))
    rng = np.random.default_rng(3)

    def feed(_lost):
        now = loop.clock.now()
        manager.push_samples("pkts", [now], rng.poisson(8.0, 1))
        return True

    loop.timeout_add(10.0, feed)
    loop.run_until(2000.0)
    writer.close()
    assert live.error is None
    return emitted


def test_obs_query_live_capture_batch_byte_identical(tmp_path):
    emitted = _instrumented_run(tmp_path / "cap")
    assert emitted, "live query over __obs.* emitted nothing"
    live_times = np.concatenate([t for t, _ in emitted])
    live_values = np.concatenate([v for _, v in emitted])

    cols = execute(CaptureReader(tmp_path / "cap"), QUERY)
    batch_times, batch_values = cols["dispatch_rate"]

    assert live_times.tobytes() == batch_times.tobytes()
    assert live_values.tobytes() == batch_values.tobytes()
    # The derived rate must reflect real dispatch activity.
    assert live_values.shape[0] > 10
    assert float(np.max(live_values)) > 0.0
