"""Stats bridging: every layer's ad-hoc counters are live registry
cells, so public accessors and published ``__obs.`` views can never
disagree."""

import pytest

from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.net import ScopeClient, ScopeServer, memory_pair
from repro.net.shard import ShardStats, ShardedScopeManager
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs


def _wire_rig():
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    server = ScopeServer(loop, manager)
    near, far = memory_pair(loop.clock)
    state = server.add_client(far)
    client = ScopeClient(near, loop)
    return loop, manager, server, client, state


class TestServerBridge:
    def test_registry_reads_equal_totals_through_churn(self):
        loop, _, server, client, state = _wire_rig()
        reg = MetricsRegistry()
        server.register_metrics(reg)
        client.send_samples("pkts", [1.0, 2.0], [10.0, 20.0])
        loop.run_until(50.0)
        totals = server.totals()
        assert totals["accepted"] == 2
        snap = reg.snapshot()
        for key, value in totals.items():
            assert snap[f"server.{key}"]["value"] == value
        assert snap["server.sessions"]["value"] == 1.0
        # Force a protocol disconnect; the fold into retired must keep
        # the mounted cells equal to totals() with no re-registration.
        client.send_samples("__obs.evil", [3.0], [30.0])
        loop.run_until(100.0)
        assert not state.connected
        snap = reg.snapshot()
        for key, value in server.totals().items():
            assert snap[f"server.{key}"]["value"] == value
        assert snap["server.disconnects.protocol"]["value"] == 1
        assert snap["server.sessions"]["value"] == 0.0
        assert snap["server.retired_sessions"]["value"] == 1.0

    def test_query_ledger_bridged_through_server(self):
        loop, _, server, client, _ = _wire_rig()
        reg = MetricsRegistry()
        server.register_metrics(reg)
        client.subscribe("out = rate(pkts)")

        def feed(_lost):
            client.send_samples("pkts", [1.0], [loop.clock.now()])
            return True

        loop.timeout_add(10.0, feed)
        loop.run_until(300.0)
        stats = server.queries.stats()
        assert stats["queries_compiled"] == 1
        assert stats["samples_fanned"] > 0
        snap = reg.snapshot()
        assert snap["server.queries.queries_compiled"]["value"] == 1
        assert (
            snap["server.queries.samples_fanned"]["value"]
            == stats["samples_fanned"]
        )
        assert snap["server.queries.active"]["value"] == 1.0
        assert snap["server.queries.subscribers"]["value"] == 1.0


class TestClientBridge:
    def test_attributes_totals_and_registry_agree(self):
        loop, _, _, client, _ = _wire_rig()
        reg = MetricsRegistry()
        client.register_metrics(reg)
        client.send_samples("pkts", [1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        loop.run_until(50.0)
        assert client.sent == 3
        totals = client.totals()
        assert totals["sent"] == 3
        assert totals["sent_frames"] >= 1
        snap = reg.snapshot()
        assert snap["client.sent"]["value"] == 3
        assert snap["client.bytes_sent"]["value"] == client.bytes_sent > 0
        assert snap["client.backlog_frames"]["value"] == 0.0

    def test_legacy_attribute_assignment_still_works(self):
        loop, _, _, client, _ = _wire_rig()
        client.send_samples("pkts", [1.0], [1.0])
        loop.run_until(50.0)
        assert client.sent == 1
        client.sent = 0  # tests and tools reset counters in place
        assert client.sent == 0
        assert client.totals()["sent"] == 0


class TestWriterBridge:
    def test_counters_histogram_and_gauge(self, tmp_path):
        from repro.capture.writer import CaptureWriter

        writer = CaptureWriter(tmp_path / "cap", segment_samples=4)
        reg = MetricsRegistry()
        writer.register_metrics(reg)
        writer.on_push("pkts", [1.0, 2.0], [1.0, 2.0], 5.0)
        assert reg.snapshot()["capture.pending_samples"]["value"] == 2.0
        writer.flush_segment()
        writer.on_push("pkts", [3.0], [3.0], 6.0)
        writer.close()
        snap = reg.snapshot()
        assert snap["capture.samples_written"]["value"] == 3
        assert snap["capture.samples_written"]["value"] == writer.samples_written
        assert snap["capture.segments_written"]["value"] == writer.segments_written
        assert snap["capture.bytes_written"]["value"] == writer.bytes_written > 0
        # Flush latency is wall time: scrape-only, one observation per
        # segment flush.
        assert snap["capture.flush_ms"]["wall"] is True
        assert snap["capture.flush_ms"]["count"] == writer.segments_written
        assert snap["capture.pending_samples"]["value"] == 0.0


class TestShardBridge:
    def test_stats_cells_are_the_mounted_cells(self):
        stats = ShardStats()
        reg = MetricsRegistry()
        stats.register_metrics(reg, "shard0.")
        stats.offered += 5
        stats.accepted = 4
        assert reg.snapshot()["shard0.offered"]["value"] == 5
        assert reg.snapshot()["shard0.accepted"]["value"] == 4

    def test_fold_conserves_counters(self):
        a, b = ShardStats(), ShardStats()
        a.offered += 3
        b.offered += 2
        a.fold(b)
        assert a.offered == 5

    def test_sharded_manager_mount(self):
        sharded = ShardedScopeManager(shards=2)
        reg = MetricsRegistry()
        sharded.register_metrics(reg)
        sharded.push_samples("pkts", [1.0], [2.0])
        snap = reg.snapshot()
        offered = sum(
            snap[f"shard{i}.offered"]["value"] for i in range(2)
        )
        assert offered == sharded.totals()["offered"] == 1


class TestSupervisorBridge:
    def test_restart_remounts_fresh_cells(self, tmp_path):
        from repro.net.supervisor import ShardSupervisor

        loop = MainLoop()

        def factory(manager, shard_id):
            scope = manager.scope_new(f"s{shard_id}", delay_ms=1e12)
            scope.signal_new(buffer_signal("pkts"))

        sup = ShardSupervisor(loop, tmp_path, shards=2, scope_factory=factory)
        reg = MetricsRegistry()
        sup.register_metrics(reg)
        home = sup.shard_of("pkts")
        sup.push_samples("pkts", [1.0], [2.0])
        assert reg.snapshot()[f"shard{home}.offered"]["value"] == 1
        sup.crash_shard(home)
        sup.restart_shard(home)
        # The replacement host carries fresh cells; the registry must
        # read them (replayed history included), not the dead ones.
        host = sup.host(home)
        snap = reg.snapshot()
        assert snap[f"shard{home}.restarts"]["value"] == host.stats.restarts == 1
        assert snap[f"shard{home}.offered"]["value"] == host.stats.offered
        sup.push_samples("pkts", [2.0], [3.0])
        assert (
            reg.snapshot()[f"shard{home}.offered"]["value"]
            == host.stats.offered
        )
        sup.close()
