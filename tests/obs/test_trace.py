"""Unit tests for virtual-time span tracing and the Chrome export."""

import json

import pytest

from repro.eventloop.clock import VirtualClock
from repro.obs import trace
from repro.obs.trace import (
    NULL_SPAN,
    TraceCollector,
    install_tracer,
    span,
    uninstall_tracer,
)

pytestmark = pytest.mark.obs


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    yield
    uninstall_tracer()


class _Clock:
    """Manually stepped clock (the VirtualClock surface spans need)."""

    def __init__(self):
        self.t = 0.0

    def now(self):
        return self.t


class TestCollector:
    def test_span_records_virtual_times(self):
        clock = _Clock()
        col = TraceCollector(clock)
        with col.span("ingest", signal="pkts"):
            clock.t = 5.0
        spans = col.spans()
        assert len(spans) == 1
        assert spans[0].name == "ingest"
        assert spans[0].t0 == 0.0
        assert spans[0].t1 == 5.0
        assert spans[0].duration == 5.0
        assert spans[0].args == {"signal": "pkts"}

    def test_nesting_depth(self):
        clock = _Clock()
        col = TraceCollector(clock)
        with col.span("outer"):
            with col.span("inner"):
                pass
        by_name = {s.name: s for s in col.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1

    def test_ring_drops_oldest(self):
        clock = _Clock()
        col = TraceCollector(clock, capacity=4)
        for i in range(10):
            with col.span(f"s{i}"):
                pass
        assert col.dropped == 6
        assert [s.name for s in col.spans()] == ["s6", "s7", "s8", "s9"]
        assert col.finished == 10

    def test_clear(self):
        col = TraceCollector(_Clock(), capacity=4)
        with col.span("a"):
            pass
        col.clear()
        assert col.spans() == []

    def test_works_with_virtual_clock(self):
        clock = VirtualClock()
        col = TraceCollector(clock)
        with col.span("x"):
            pass
        assert col.spans()[0].t0 == clock.now()


class TestChromeExport:
    def test_complete_events_in_microseconds(self):
        clock = _Clock()
        col = TraceCollector(clock)
        with col.span("ingest", n=3):
            clock.t = 2.5
        payload = json.loads(col.chrome_json())
        assert payload["displayTimeUnit"] == "ms"
        (event,) = payload["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "ingest"
        assert event["ts"] == 0.0
        assert event["dur"] == 2500.0  # 2.5 ms in µs
        assert event["args"] == {"n": 3}

    def test_events_sorted_by_start_then_depth(self):
        clock = _Clock()
        col = TraceCollector(clock)
        with col.span("outer"):
            with col.span("inner"):
                clock.t = 1.0
            clock.t = 2.0
        events = json.loads(col.chrome_json())["traceEvents"]
        assert [e["name"] for e in events] == ["outer", "inner"]


class TestModuleTracer:
    def test_span_is_noop_without_tracer(self):
        assert trace._tracer is None
        handle = span("anything")
        assert handle is NULL_SPAN
        with handle:
            pass  # must not raise

    def test_install_routes_spans(self):
        col = TraceCollector(_Clock())
        assert install_tracer(col)
        with span("routed", k=1):
            pass
        assert [s.name for s in col.spans()] == ["routed"]
        uninstall_tracer()
        with span("after"):
            pass
        assert len(col.spans()) == 1  # nothing new

    def test_install_refused_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        assert not install_tracer(TraceCollector(_Clock()))
        assert trace._tracer is None


class TestPipelineSpans:
    def test_wire_pipeline_emits_nested_spans(self):
        """ingest → deliver → derive → fanout, all on virtual time."""
        from repro.core.manager import ScopeManager
        from repro.core.signal import buffer_signal
        from repro.eventloop.loop import MainLoop
        from repro.net import ScopeClient, ScopeServer, memory_pair

        loop = MainLoop()
        col = TraceCollector(loop.clock)
        assert install_tracer(col)
        manager = ScopeManager(loop)
        scope = manager.scope_new("s", delay_ms=1e12)
        scope.signal_new(buffer_signal("pkts"))
        server = ScopeServer(loop, manager)
        near, far = memory_pair(loop.clock)
        server.add_client(far)
        client = ScopeClient(near, loop)
        client.subscribe("out = rate(pkts)")

        def feed(_lost):
            now = loop.clock.now()
            client.send_samples("pkts", [1.0], [now])
            return True

        loop.timeout_add(10.0, feed)
        loop.run_until(500.0)
        names = {s.name for s in col.spans()}
        assert {"ingest", "deliver", "derive", "fanout"} <= names
        ingest = next(s for s in col.spans() if s.name == "ingest")
        deliver = next(s for s in col.spans() if s.name == "deliver")
        assert ingest.depth == 0
        assert deliver.depth >= 1  # nested inside the server's ingest

    def test_route_span_in_sharded_path(self):
        from repro.eventloop.loop import MainLoop
        from repro.net.shard import ShardedScopeManager

        loop = MainLoop()
        col = TraceCollector(loop.clock)
        assert install_tracer(col)
        sharded = ShardedScopeManager(shards=2, loop=loop)
        sharded.push_samples("pkts", [1.0], [2.0])
        names = [s.name for s in col.spans()]
        assert "route" in names
        assert "deliver" in names
