"""Unit tests for the obs metric cells, registry and publisher."""

import numpy as np
import pytest

from repro.core.cells import NULL, Counter, Gauge, Histogram
from repro.core.manager import ScopeManager
from repro.core.signal import buffer_signal
from repro.eventloop.loop import MainLoop
from repro.obs import metrics
from repro.obs.metrics import (
    OBS_PREFIX,
    MetricsPublisher,
    MetricsRegistry,
    enabled,
    is_reserved,
)

pytestmark = pytest.mark.obs


class TestCells:
    def test_counter_inc(self):
        c = Counter("hits")
        c.inc()
        c.inc(5)
        assert c.value == 6
        assert c.read() == 6.0
        assert c.kind == "counter"

    def test_gauge_set_and_callback(self):
        g = Gauge("depth")
        g.set(3.5)
        assert g.read() == 3.5
        g = Gauge("depth", fn=lambda: 42.0)
        assert g.read() == 42.0

    def test_histogram_buckets(self):
        h = Histogram("lag", bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0, 0.2):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(55.7)
        assert h.buckets.tolist() == [2, 1, 1]

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("bad", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="non-empty"):
            Histogram("bad", bounds=())

    def test_null_instrument_is_inert(self):
        NULL.inc()
        NULL.inc(10)
        NULL.set(5.0)
        NULL.observe(1.0)
        assert NULL.read() == 0.0


class TestEnabled:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)
        assert enabled()

    @pytest.mark.parametrize("value", ["0", "false", "no"])
    def test_opt_out(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_OBS", value)
        assert not enabled()

    def test_is_reserved(self):
        assert is_reserved("__obs.shard0.offered")
        assert not is_reserved("pkts")
        assert not is_reserved("_intermediate")


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        c1 = reg.counter("a")
        c2 = reg.counter("a")
        assert c1 is c2
        assert len(reg) == 1

    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ValueError, match="already mounted as Counter"):
            reg.gauge("a")

    def test_mount_existing_cell(self):
        reg = MetricsRegistry()
        cell = Counter()
        reg.mount("x.hits", cell)
        assert reg.get("x.hits") is cell
        assert cell.name == "x.hits"  # name backfilled on mount
        reg.mount("x.hits", cell)  # same cell: no-op
        with pytest.raises(ValueError, match="already mounted"):
            reg.mount("x.hits", Counter())

    def test_mount_rejects_reserved_prefix(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="publisher adds it"):
            reg.mount(OBS_PREFIX + "x", Counter())

    def test_unmount_prefix(self):
        reg = MetricsRegistry()
        reg.counter("shard0.offered")
        reg.counter("shard0.accepted")
        reg.counter("shard1.offered")
        reg.unmount_prefix("shard0.")
        assert reg.names() == ["shard1.offered"]

    def test_snapshot_includes_histogram_detail(self):
        reg = MetricsRegistry()
        h = reg.histogram("lag", bounds=(1.0, 2.0))
        h.observe(1.5)
        snap = reg.snapshot()
        assert snap["lag"]["kind"] == "histogram"
        assert snap["lag"]["count"] == 1
        assert snap["lag"]["buckets"] == [0, 1, 0]


def _rig():
    loop = MainLoop()
    manager = ScopeManager(loop)
    scope = manager.scope_new("s", delay_ms=1e12)
    scope.signal_new(buffer_signal("pkts"))
    return loop, manager


class _RecordingSink:
    """Sink capturing push calls; exposes push_obs to prove preference."""

    def __init__(self):
        self.pushes = []

    def push_obs(self, name, times, values):
        self.pushes.append((name, list(times), list(values)))
        return len(times)

    def push_samples(self, name, times, values):  # pragma: no cover
        raise AssertionError("publisher must prefer push_obs")


class TestPublisher:
    def test_counter_publishes_deltas(self):
        loop, _ = _rig()
        sink = _RecordingSink()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, sink, reg, period_ms=10.0)
        c = reg.counter("hits")
        c.inc(3)
        assert pub.publish(100.0) == 1
        c.inc(2)
        assert pub.publish(200.0) == 1
        assert sink.pushes == [
            (OBS_PREFIX + "hits", [100.0], [3.0]),
            (OBS_PREFIX + "hits", [200.0], [2.0]),
        ]

    def test_unchanged_instruments_suppressed(self):
        loop, _ = _rig()
        sink = _RecordingSink()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, sink, reg, period_ms=10.0)
        reg.counter("hits")  # never incremented
        g = reg.gauge("depth")
        g.set(5.0)
        assert pub.publish(100.0) == 1  # first gauge reading always emits
        assert pub.publish(200.0) == 0  # nothing changed
        g.set(5.0)  # same value: still suppressed
        assert pub.publish(300.0) == 0
        g.set(6.0)
        assert pub.publish(400.0) == 1

    def test_histogram_publishes_count_and_sum_deltas(self):
        loop, _ = _rig()
        sink = _RecordingSink()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, sink, reg, period_ms=10.0)
        h = reg.histogram("lag", bounds=(1.0,))
        h.observe(0.5)
        h.observe(2.0)
        assert pub.publish(100.0) == 2
        names = [name for name, _, _ in sink.pushes]
        assert names == [OBS_PREFIX + "lag.count", OBS_PREFIX + "lag.sum"]
        assert sink.pushes[0][2] == [2.0]
        assert sink.pushes[1][2] == [2.5]

    def test_wall_instruments_never_published(self):
        loop, _ = _rig()
        sink = _RecordingSink()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, sink, reg, period_ms=10.0)
        reg.counter("slow", wall=True).inc(5)
        reg.histogram("flush", wall=True).observe(1.0)
        assert pub.publish(100.0) == 0
        assert sink.pushes == []

    def test_sorted_name_order(self):
        loop, _ = _rig()
        sink = _RecordingSink()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, sink, reg, period_ms=10.0)
        reg.counter("zebra").inc()
        reg.counter("alpha").inc()
        pub.publish(100.0)
        assert [n for n, _, _ in sink.pushes] == [
            OBS_PREFIX + "alpha",
            OBS_PREFIX + "zebra",
        ]

    def test_timer_driven_publishing_into_manager(self):
        loop, manager = _rig()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, manager, reg, period_ms=50.0)
        assert pub.active
        c = reg.counter("hits")

        def feed(_lost):
            c.inc()
            return True

        loop.timeout_add(10.0, feed)
        seen = []
        manager.add_tap(lambda name, t, v, now: seen.append(name))
        loop.run_until(500.0)
        assert OBS_PREFIX + "hits" in seen
        assert pub.ticks >= 5
        assert pub.samples_published >= 5

    def test_inert_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        loop, manager = _rig()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, manager, reg, period_ms=50.0)
        assert not pub.active

    def test_rejects_bad_period(self):
        loop, manager = _rig()
        with pytest.raises(ValueError, match="period_ms"):
            MetricsPublisher(loop, manager, MetricsRegistry(), period_ms=0.0)

    def test_close_disarms_timer(self):
        loop, manager = _rig()
        reg = MetricsRegistry()
        pub = MetricsPublisher(loop, manager, reg, period_ms=50.0)
        pub.close()
        assert not pub.active
        # still scrapeable after close
        reg.counter("hits").inc()
        sink = _RecordingSink()
        pub2 = MetricsPublisher(loop, sink, reg, period_ms=50.0)
        assert pub2.publish(10.0) == 1


class TestLoopProfiler:
    def test_dispatch_counts_and_timer_lag(self):
        loop = MainLoop()
        reg = MetricsRegistry()
        assert loop.observe(reg)
        fired = []
        loop.timeout_add(10.0, lambda _lost: (fired.append(1), len(fired) < 5)[1])
        loop.run_until(200.0)
        snap = reg.snapshot()
        assert snap["loop.dispatch.default"]["value"] >= 5
        assert snap["loop.timer_lag_ms"]["count"] >= 5
        # virtual clock fires timers exactly on deadline: zero lag
        assert snap["loop.timer_lag_ms"]["sum"] == 0.0

    def test_observe_respects_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "0")
        loop = MainLoop()
        assert not loop.observe(MetricsRegistry())

    def test_slow_callback_detection(self):
        import time as _time

        loop = MainLoop()
        reg = MetricsRegistry()
        assert loop.observe(reg, slow_callback_ms=5.0)

        def slow(_lost):
            _time.sleep(0.02)
            return False

        loop.timeout_add(10.0, slow)
        loop.run_until(50.0)
        snap = reg.snapshot()
        assert snap["loop.slow_callbacks"]["value"] >= 1
        assert snap["loop.slow_callbacks"]["wall"] is True

    def test_unobserve(self):
        loop = MainLoop()
        reg = MetricsRegistry()
        loop.observe(reg)
        loop.unobserve()
        loop.timeout_add(10.0, lambda _lost: False)
        loop.run_until(50.0)
        assert reg.snapshot()["loop.dispatch.default"]["value"] == 0
