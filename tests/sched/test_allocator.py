"""Tests for the feedback-driven proportion allocator."""

import pytest

from repro.sched import ProportionAllocator, SchedulerConfig, SimProcess


def converge(allocator, periods=400):
    allocator.run_periods(periods)


class TestManagement:
    def test_add_and_lookup(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 30, 100))
        assert alloc.process("a").name == "a"
        assert len(alloc.processes) == 1

    def test_duplicate_rejected(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 30, 100))
        with pytest.raises(ValueError):
            alloc.add(SimProcess("a", 10, 100))

    def test_remove(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 30, 100))
        removed = alloc.remove("a")
        assert removed.name == "a"
        assert alloc.processes == []

    def test_initial_proportion_defaults_to_ideal(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 30, 100))
        assert alloc.proportion_of("a") == pytest.approx(0.3)


class TestFeedbackConvergence:
    def test_single_process_converges_to_ideal(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 30, 100), initial_proportion=0.05)
        converge(alloc)
        assert alloc.proportion_of("a") == pytest.approx(0.3, abs=0.05)
        assert alloc.process("a").queue_fill == pytest.approx(0.5, abs=0.1)

    def test_multiple_processes_each_converge(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("video", 30, 100), initial_proportion=0.1)
        alloc.add(SimProcess("audio", 50, 400), initial_proportion=0.5)
        converge(alloc)
        assert alloc.proportion_of("video") == pytest.approx(0.30, abs=0.05)
        assert alloc.proportion_of("audio") == pytest.approx(0.125, abs=0.05)

    def test_rate_change_tracked(self):
        """The paper's 'dynamically changing process proportions'."""
        alloc = ProportionAllocator()
        alloc.add(SimProcess("video", 30, 100))
        converge(alloc)
        alloc.process("video").rate_change(60)
        converge(alloc)
        assert alloc.proportion_of("video") == pytest.approx(0.6, abs=0.08)

    def test_progress_keeps_up_when_feasible(self):
        cfg = SchedulerConfig(period_ms=50)
        alloc = ProportionAllocator(cfg)
        process = SimProcess("a", desired_rate=30, work_factor=100)
        alloc.add(process)
        converge(alloc, periods=600)
        elapsed_s = alloc.periods * cfg.period_ms / 1000.0
        assert process.progress == pytest.approx(30 * elapsed_s, rel=0.1)


class TestOvercommit:
    def test_squeeze_keeps_total_at_one(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 70, 100))  # wants 0.7
        alloc.add(SimProcess("b", 60, 100))  # wants 0.6 — total 1.3
        converge(alloc)
        assert alloc.total_assigned <= 1.0 + 1e-9
        assert alloc.squeezes > 0

    def test_squeeze_is_proportional(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 80, 100))
        alloc.add(SimProcess("b", 40, 100))
        converge(alloc)
        ratio = alloc.proportion_of("a") / alloc.proportion_of("b")
        assert ratio == pytest.approx(2.0, rel=0.35)

    def test_feasible_load_not_squeezed_at_steady_state(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 20, 100))
        alloc.add(SimProcess("b", 30, 100))
        converge(alloc)
        before = alloc.squeezes
        alloc.run_periods(100)
        assert alloc.squeezes == before


class TestDynamicPopulation:
    def test_arrival_of_new_process_rebalances(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 50, 100))
        converge(alloc)
        alloc.add(SimProcess("b", 50, 100))
        converge(alloc)
        assert alloc.proportion_of("a") == pytest.approx(0.5, abs=0.1)
        assert alloc.proportion_of("b") == pytest.approx(0.5, abs=0.1)

    def test_departure_frees_capacity(self):
        alloc = ProportionAllocator()
        alloc.add(SimProcess("a", 70, 100))
        alloc.add(SimProcess("b", 70, 100))
        converge(alloc)
        alloc.remove("b")
        converge(alloc)
        assert alloc.proportion_of("a") == pytest.approx(0.7, abs=0.08)
        assert alloc.process("a").queue_fill == pytest.approx(0.5, abs=0.15)
