"""Tests for the simulated real-rate processes."""

import pytest

from repro.sched.process import SimProcess


class TestValidation:
    def test_positive_rate_required(self):
        with pytest.raises(ValueError):
            SimProcess("p", desired_rate=0, work_factor=10)

    def test_positive_work_factor_required(self):
        with pytest.raises(ValueError):
            SimProcess("p", desired_rate=10, work_factor=-1)

    def test_positive_queue_capacity(self):
        with pytest.raises(ValueError):
            SimProcess("p", 10, 10, queue_capacity=0)

    def test_negative_cpu_rejected(self):
        p = SimProcess("p", 10, 10)
        with pytest.raises(ValueError):
            p.run_for(-0.1)


class TestProgressModel:
    def test_ideal_proportion(self):
        p = SimProcess("video", desired_rate=30, work_factor=100)
        assert p.ideal_proportion == pytest.approx(0.3)

    def test_starts_at_setpoint_fill(self):
        p = SimProcess("p", 10, 10)
        assert p.queue_fill == pytest.approx(0.5)

    def test_produce_fills_queue(self):
        p = SimProcess("p", desired_rate=10, work_factor=10, queue_capacity=100)
        p.produce(1.0)  # one second of work arrives
        assert p.queue == pytest.approx(60.0)  # 50 + 10

    def test_run_drains_queue_and_makes_progress(self):
        p = SimProcess("p", desired_rate=10, work_factor=20, queue_capacity=100)
        done = p.run_for(1.0)  # capacity 20 units, queue has 50
        assert done == pytest.approx(20.0)
        assert p.progress == pytest.approx(20.0)
        assert p.queue == pytest.approx(30.0)

    def test_exact_proportion_holds_fill_steady(self):
        p = SimProcess("p", desired_rate=30, work_factor=100)
        for _ in range(100):
            p.produce(0.05)
            p.run_for(p.ideal_proportion * 0.05)
        assert p.queue_fill == pytest.approx(0.5, abs=0.01)

    def test_underallocation_fills_queue(self):
        p = SimProcess("p", desired_rate=30, work_factor=100)
        for _ in range(50):
            p.produce(0.05)
            p.run_for(0.1 * 0.05)  # only a third of the need
        assert p.queue_fill > 0.5

    def test_overflow_accounted(self):
        p = SimProcess("p", desired_rate=1000, work_factor=10, queue_capacity=10)
        p.produce(1.0)
        assert p.queue == 10.0
        assert p.overflows == pytest.approx(995.0)

    def test_underflow_accounted(self):
        p = SimProcess("p", desired_rate=1, work_factor=1000, queue_capacity=10)
        p.run_for(1.0)  # capacity 1000 against a queue of 5
        assert p.underflows > 0
        assert p.queue == 0.0

    def test_rate_change(self):
        p = SimProcess("p", 30, 100)
        p.rate_change(60)
        assert p.ideal_proportion == pytest.approx(0.6)
        with pytest.raises(ValueError):
            p.rate_change(0)

    def test_cpu_accounting(self):
        p = SimProcess("p", 10, 10)
        p.run_for(0.25)
        assert p.cpu_ms_used == pytest.approx(250.0)
