"""Tests for the quality-adaptive streaming player."""

import pytest

from repro.media.player import AdaptivePlayer, PlayerConfig


class TestBasics:
    def test_needs_quality_levels(self):
        with pytest.raises(ValueError):
            AdaptivePlayer(PlayerConfig(quality_levels_kbps=[]))

    def test_starts_mid_ladder(self):
        player = AdaptivePlayer()
        ladder = player.config.quality_levels_kbps
        assert player.level == len(ladder) // 2

    def test_bandwidth_positive_and_varies(self):
        player = AdaptivePlayer()
        samples = []
        for _ in range(300):
            player.tick(0.1)
            samples.append(player.bandwidth_kbps())
        assert min(samples) > 0
        assert max(samples) > 1.2 * min(samples)  # the fade is visible


class TestAdaptation:
    def test_rich_network_raises_quality(self):
        cfg = PlayerConfig(
            mean_bandwidth_kbps=8000, bandwidth_swing=0.0, jitter=0.0, hold_ticks=2
        )
        player = AdaptivePlayer(cfg)
        player.run(30, dt_s=0.1)
        assert player.level == len(cfg.quality_levels_kbps) - 1

    def test_poor_network_lowers_quality(self):
        cfg = PlayerConfig(
            mean_bandwidth_kbps=100, bandwidth_swing=0.0, jitter=0.0, hold_ticks=2
        )
        player = AdaptivePlayer(cfg)
        player.run(30, dt_s=0.1)
        assert player.level == 0

    def test_fading_network_changes_quality_both_ways(self):
        player = AdaptivePlayer(PlayerConfig(hold_ticks=5))
        levels = set()
        for _ in range(1200):
            player.tick(0.1)
            levels.add(player.level)
        assert len(levels) >= 2
        assert player.quality_changes >= 2

    def test_hold_limits_flapping(self):
        flappy = AdaptivePlayer(PlayerConfig(hold_ticks=0, seed=9))
        calm = AdaptivePlayer(PlayerConfig(hold_ticks=30, seed=9))
        for _ in range(600):
            flappy.tick(0.1)
            calm.tick(0.1)
        assert calm.quality_changes <= flappy.quality_changes

    def test_quality_matched_to_bandwidth_plays_cleanly(self):
        """When the ladder matches the pipe, few or no display misses
        after the startup transient."""
        cfg = PlayerConfig(
            mean_bandwidth_kbps=1600, bandwidth_swing=0.0, jitter=0.0
        )
        player = AdaptivePlayer(cfg)
        player.run(10, dt_s=0.1)  # warm up
        misses_before = player.pipeline.display_misses
        player.run(30, dt_s=0.1)
        assert player.pipeline.display_misses - misses_before < 60


class TestSignalHooks:
    def test_hooks_return_floats_in_range(self):
        player = AdaptivePlayer()
        player.run(5, dt_s=0.1)
        assert 0.0 <= player.get_quality_level() < len(
            player.config.quality_levels_kbps
        )
        assert player.get_bandwidth() > 0
        assert 0.0 <= player.get_buffer_fill() <= 100.0

    def test_deterministic_with_seed(self):
        a = AdaptivePlayer(PlayerConfig(seed=4))
        b = AdaptivePlayer(PlayerConfig(seed=4))
        a.run(20, dt_s=0.1)
        b.run(20, dt_s=0.1)
        assert a.level == b.level
        assert a.pipeline.displayed == b.pipeline.displayed
