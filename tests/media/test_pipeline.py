"""Tests for the media pipeline and its fill-level signals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.media.pipeline import Pipeline, StageBuffer


class TestStageBuffer:
    def test_validation(self):
        with pytest.raises(ValueError):
            StageBuffer("b", 0)
        buf = StageBuffer("b", 10)
        with pytest.raises(ValueError):
            buf.offer(-1)
        with pytest.raises(ValueError):
            buf.take(-1)

    def test_offer_take(self):
        buf = StageBuffer("b", 10)
        assert buf.offer(4) == 4
        assert buf.frames == 4
        assert buf.take(2) == 2
        assert buf.frames == 2

    def test_offer_beyond_capacity_drops(self):
        buf = StageBuffer("b", 5)
        assert buf.offer(8) == 5
        assert buf.overflow_drops == 3

    def test_take_beyond_contents(self):
        buf = StageBuffer("b", 5)
        buf.offer(2)
        assert buf.take(10) == 2

    def test_fill_percent(self):
        buf = StageBuffer("b", 20)
        buf.offer(5)
        assert buf.fill_percent == 25.0

    def test_conservation_counters(self):
        buf = StageBuffer("b", 10)
        buf.offer(7)
        buf.take(3)
        assert buf.total_in - buf.total_out == buf.frames


class TestPipeline:
    def test_validation(self):
        with pytest.raises(ValueError):
            Pipeline(decode_rate_fps=0)
        p = Pipeline()
        with pytest.raises(ValueError):
            p.tick(0, 1)

    def test_frames_flow_through(self):
        p = Pipeline(decode_rate_fps=60, display_rate_fps=30)
        for _ in range(30):
            p.tick(0.1, arriving_frames=3)  # 30 fps arrival
        assert p.displayed > 0
        assert p.network_buffer.total_out > 0

    def test_starved_display_misses(self):
        p = Pipeline()
        for _ in range(20):
            p.tick(0.1, arriving_frames=0)
        assert p.display_misses > 0
        assert p.displayed == 0

    def test_oversupplied_network_buffer_drops(self):
        p = Pipeline(network_capacity=10)
        for _ in range(20):
            p.tick(0.1, arriving_frames=50)
        assert p.network_buffer.overflow_drops > 0

    def test_decoder_respects_downstream_space(self):
        p = Pipeline(decoded_capacity=5, display_rate_fps=1, decode_rate_fps=1000)
        for _ in range(10):
            p.tick(0.1, arriving_frames=20)
        assert p.decoded_buffer.frames <= 5

    def test_signal_hooks_in_percent(self):
        p = Pipeline()
        p.tick(0.1, arriving_frames=10)
        assert 0.0 <= p.get_network_fill() <= 100.0
        assert 0.0 <= p.get_decoded_fill() <= 100.0

    def test_stats_keys(self):
        p = Pipeline()
        p.tick(0.1, 1)
        assert set(p.stats()) == {"displayed", "display_misses", "network_drops"}

    @settings(deadline=None, max_examples=30)
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=80)
    )
    def test_frame_conservation(self, arrivals):
        """Frames in = frames displayed + buffered + dropped, always."""
        p = Pipeline()
        for n in arrivals:
            p.tick(0.1, n)
        offered = sum(arrivals)
        accounted = (
            p.displayed
            + p.network_buffer.frames
            + p.decoded_buffer.frames
            + p.network_buffer.overflow_drops
        )
        assert accounted == offered
