"""Randomized equivalence: indexed MainLoop vs the seed scan loop.

The indexed scheduler (deadline heap, id-indexed partitions) must be
observationally identical to the seed implementation that rescanned every
source per iteration.  :class:`ReferenceLoop` below *is* that seed
implementation, kept verbatim as the oracle; randomized scenarios —
mixed priorities, removal during dispatch, self-removal, mid-run
attachment, lost intervals under a latency-spiking kernel clock, idle
starvation — are run against both and their dispatch traces compared
bit-for-bit (callback order, clock timestamps, lost counts).
"""

from __future__ import annotations

import random
from typing import List, Optional

import pytest

from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import (
    IdleSource,
    IOWatch,
    Priority,
    Source,
    TimeoutSource,
)


# ----------------------------------------------------------------------
# The seed MainLoop, verbatim: linear scans over one source list.
# ----------------------------------------------------------------------
class ReferenceLoop:
    def __init__(self, clock=None, max_io_poll_ms: float = 1.0) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self.max_io_poll_ms = float(max_io_poll_ms)
        self._sources: List[Source] = []
        self._running = False
        self.iterations = 0
        self.dispatches = 0

    def attach(self, source: Source) -> int:
        if source.attached:
            raise ValueError(f"source {source.id} already attached")
        source.attached = True
        source.destroyed = False
        if isinstance(source, TimeoutSource):
            source.start(self.clock.now())
        self._sources.append(source)
        return source.id

    def remove(self, source_id: int) -> bool:
        for src in self._sources:
            if src.id == source_id:
                src.destroy()
                src.attached = False
                self._sources.remove(src)
                return True
        return False

    def timeout_add(self, interval_ms, callback, priority=Priority.DEFAULT):
        return self.attach(TimeoutSource(interval_ms, callback, priority))

    def idle_add(self, callback, priority=Priority.DEFAULT_IDLE):
        return self.attach(IdleSource(callback, priority))

    @property
    def sources(self):
        return list(self._sources)

    def _ready_sources(self, now, include_idle):
        ready = [
            s for s in self._sources if not isinstance(s, IdleSource) and s.ready(now)
        ]
        if not ready and include_idle:
            ready = [s for s in self._sources if isinstance(s, IdleSource)]
        return sorted(ready, key=lambda s: (s.priority, s.id))

    def _earliest_deadline(self, now):
        deadlines = [
            d for s in self._sources if (d := s.next_deadline(now)) is not None
        ]
        return min(deadlines) if deadlines else None

    def _dispatch(self, ready, now):
        count = 0
        for src in ready:
            if src.destroyed or not src.attached:
                continue
            keep = src.dispatch(now)
            count += 1
            if (not keep or src.destroyed) and src in self._sources:
                src.attached = False
                self._sources.remove(src)
        self.dispatches += count
        return count

    def iteration(self, may_block: bool = True) -> bool:
        self.iterations += 1
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=True)
        if ready:
            return self._dispatch(ready, now) > 0
        if not may_block:
            return False
        deadline = self._earliest_deadline(now)
        has_io = any(isinstance(s, IOWatch) for s in self._sources)
        if deadline is None and not has_io:
            return False
        if deadline is None or (has_io and deadline - now > self.max_io_poll_ms):
            deadline = now + self.max_io_poll_ms
        self.clock.wait_until(deadline)
        now = self.clock.now()
        ready = self._ready_sources(now, include_idle=False)
        return self._dispatch(ready, now) > 0

    def run(self, max_iterations: Optional[int] = None) -> None:
        self._running = True
        done = 0
        while self._running and self._sources:
            timed_or_io = [s for s in self._sources if not isinstance(s, IdleSource)]
            self.iteration(may_block=bool(timed_or_io))
            done += 1
            if max_iterations is not None and done >= max_iterations:
                break
        self._running = False

    def run_until(self, deadline_ms: float) -> None:
        self._running = True
        while self._running and self.clock.now() < deadline_ms:
            now = self.clock.now()
            ready = self._ready_sources(now, include_idle=False)
            if ready:
                self._dispatch(ready, now)
                continue
            next_deadline = self._earliest_deadline(now)
            has_io = any(isinstance(s, IOWatch) for s in self._sources)
            if has_io:
                step = min(
                    next_deadline if next_deadline is not None else deadline_ms,
                    now + self.max_io_poll_ms,
                    deadline_ms,
                )
            elif next_deadline is None or next_deadline > deadline_ms:
                self.clock.wait_until(deadline_ms)
                break
            else:
                step = next_deadline
            self.clock.wait_until(max(step, now))
        self._running = False

    def quit(self) -> None:
        self._running = False


# ----------------------------------------------------------------------
# Scenario harness: one declarative spec, instantiated on both loops.
# ----------------------------------------------------------------------
INTERVALS = [7.0, 10.0, 25.0, 30.0, 50.0, 75.0, 100.0]
PRIORITIES = [
    Priority.HIGH,
    Priority.DEFAULT,
    Priority.HIGH_IDLE,
    Priority.DEFAULT_IDLE,
    Priority.LOW,
]


def random_scenario(rng: random.Random) -> dict:
    """A random mix of timers and idles with scripted side effects."""
    timers = []
    for t in range(rng.randint(2, 7)):
        timers.append(
            {
                "name": f"t{t}",
                "interval": rng.choice(INTERVALS),
                "priority": rng.choice(PRIORITIES),
                # die_after: return False on the k-th fire (glib removal)
                "die_after": rng.choice([None, None, rng.randint(1, 5)]),
                # remove: on fire k, loop.remove() another source by name
                "remove": (
                    (rng.randint(1, 3), f"t{rng.randrange(0, t)}")
                    if t > 0 and rng.random() < 0.3
                    else None
                ),
                # spawn: on fire k, attach a brand-new timer mid-run
                "spawn": (
                    (rng.randint(1, 3), rng.choice(INTERVALS))
                    if rng.random() < 0.25
                    else None
                ),
            }
        )
    idles = [
        {"name": f"i{j}", "lives": rng.randint(1, 4), "priority": rng.choice(PRIORITIES)}
        for j in range(rng.randint(0, 2))
    ]
    return {
        "timers": timers,
        "idles": idles,
        "horizon": rng.choice([200.0, 333.0, 500.0, 1000.0]),
        # Optional kernel-model latency spikes keyed by wakeup time.
        "spikes": (
            {float(rng.randrange(1, 20) * 10): float(rng.randrange(5, 150))}
            if rng.random() < 0.4
            else None
        ),
    }


def run_scenario(loop_cls, spec: dict) -> tuple:
    """Instantiate the spec on a fresh loop; return its dispatch trace."""
    if spec["spikes"] is not None:
        spikes = dict(spec["spikes"])
        clock = KernelTimerModel(
            VirtualClock(), tick_ms=10.0, latency=lambda t: spikes.pop(t, 0.0)
        )
        loop = loop_cls(clock=clock)
    else:
        loop = loop_cls()
    trace: List[tuple] = []
    ids: dict = {}
    fires: dict = {}

    def make_timer_cb(cfg):
        name = cfg["name"]

        def cb(lost):
            fires[name] = fires.get(name, 0) + 1
            k = fires[name]
            trace.append((name, loop.clock.now(), lost))
            if cfg.get("remove") and k == cfg["remove"][0]:
                target = cfg["remove"][1]
                if target in ids:
                    loop.remove(ids.pop(target))
            if cfg.get("spawn") and k == cfg["spawn"][0]:
                child = {
                    "name": f"{name}+child",
                    "interval": cfg["spawn"][1],
                    "die_after": 2,
                }
                ids[child["name"]] = loop.timeout_add(
                    child["interval"], make_timer_cb(child)
                )
            if cfg.get("die_after") and k >= cfg["die_after"]:
                ids.pop(name, None)
                return False
            return True

        return cb

    def make_idle_cb(cfg):
        name, lives = cfg["name"], cfg["lives"]

        def cb():
            fires[name] = fires.get(name, 0) + 1
            trace.append((name, loop.clock.now(), None))
            return fires[name] < lives

        return cb

    for cfg in spec["timers"]:
        ids[cfg["name"]] = loop.timeout_add(
            cfg["interval"], make_timer_cb(cfg), cfg["priority"]
        )
    for cfg in spec["idles"]:
        ids[cfg["name"]] = loop.idle_add(make_idle_cb(cfg), cfg["priority"])

    loop.run_until(spec["horizon"])
    remaining = sorted(
        name for name, sid in ids.items() if any(s.id == sid for s in loop.sources)
    )
    return tuple(trace), loop.clock.now(), remaining


@pytest.mark.parametrize("seed", range(40))
def test_randomized_dispatch_equivalence(seed):
    """Trace-for-trace identity across random mixed-source scenarios."""
    spec = random_scenario(random.Random(seed))
    ref_trace, ref_clock, ref_left = run_scenario(ReferenceLoop, spec)
    idx_trace, idx_clock, idx_left = run_scenario(MainLoop, spec)
    assert idx_trace == ref_trace
    assert idx_clock == ref_clock
    assert idx_left == ref_left


@pytest.mark.parametrize("seed", range(40, 55))
def test_randomized_run_equivalence(seed):
    """run() (blocking iteration driver) matches on random scenarios."""
    rng = random.Random(seed)
    spec = random_scenario(rng)
    # run() needs termination: make every source finite.
    for cfg in spec["timers"]:
        cfg["die_after"] = rng.randint(1, 4)
        cfg["spawn"] = None
    results = []
    for loop_cls in (ReferenceLoop, MainLoop):
        if spec["spikes"] is not None:
            spikes = dict(spec["spikes"])
            clock = KernelTimerModel(
                VirtualClock(), tick_ms=10.0, latency=lambda t: spikes.pop(t, 0.0)
            )
            loop = loop_cls(clock=clock)
        else:
            loop = loop_cls()
        trace = []

        def bind(cfg, loop=loop, trace=trace):
            count = [0]

            def cb(lost):
                count[0] += 1
                trace.append((cfg["name"], loop.clock.now(), lost))
                return count[0] < cfg["die_after"]

            return cb

        for cfg in spec["timers"]:
            loop.timeout_add(cfg["interval"], bind(cfg), cfg["priority"])
        loop.run(max_iterations=500)
        results.append((tuple(trace), loop.clock.now(), len(loop.sources)))
    assert results[0] == results[1]


class TestDirectedEquivalence:
    """Hand-picked corners the random generator may miss."""

    def scenario(self, build):
        out = []
        for loop_cls in (ReferenceLoop, MainLoop):
            loop = loop_cls()
            trace: List[tuple] = []
            build(loop, trace)
            out.append((tuple(trace), loop.clock.now(), len(loop.sources)))
        assert out[0] == out[1]

    def test_higher_priority_removes_simultaneous_lower(self):
        """A ready source removed by an earlier callback must not fire."""

        def build(loop, trace):
            victim_id = loop.timeout_add(
                50, lambda lost: trace.append(("victim", loop.clock.now())) or True,
                Priority.LOW,
            )
            loop.timeout_add(
                50,
                lambda lost: trace.append(("killer", loop.clock.now()))
                or loop.remove(victim_id)
                or True,
                Priority.HIGH,
            )
            loop.run_until(200)

        self.scenario(build)

    def test_self_removal_then_reattach(self):
        """remove() inside one's own callback, then a fresh attach."""

        def build(loop, trace):
            state = {}

            def cb(lost):
                trace.append(("a", loop.clock.now(), lost))
                loop.remove(state["id"])
                state["id"] = loop.timeout_add(30, cb)
                return True  # irrelevant: already detached

            state["id"] = loop.timeout_add(20, cb)
            loop.run_until(200)

        self.scenario(build)

    def test_restart_after_lost_intervals(self):
        """Advance far past several deadlines; lost accounting must match."""

        def build(loop, trace):
            loop.timeout_add(
                10, lambda lost: trace.append(("t", loop.clock.now(), lost)) or True
            )
            loop.clock.advance(95)  # swallow whole intervals before running
            loop.run_until(150)

        self.scenario(build)

    def test_idles_starve_while_timer_ready(self):
        def build(loop, trace):
            loop.timeout_add(
                10, lambda lost: trace.append(("t", loop.clock.now())) or True
            )
            lives = [0]

            def idle():
                lives[0] += 1
                trace.append(("idle", loop.clock.now()))
                return lives[0] < 3

            loop.idle_add(idle)
            for _ in range(12):
                loop.iteration(may_block=True)

        self.scenario(build)

    def test_interleaved_attach_remove_storm(self):
        """O(1) attach/remove path: many churns, then a clean run."""

        def build(loop, trace):
            ids = [loop.timeout_add(50 + i, lambda lost: True) for i in range(50)]
            for sid in ids[::2]:
                assert loop.remove(sid) is True
            for sid in ids[::2]:
                assert loop.remove(sid) is False  # already gone
            loop.timeout_add(
                25, lambda lost: trace.append(("live", loop.clock.now())) or True
            )
            loop.run_until(120)
            trace.append(("sources", len(loop.sources)))

        self.scenario(build)

    def test_remove_reattach_same_source_same_instant(self):
        """Dead and live heap entries for one source id must coexist:
        the tiebreaker may never fall through to Source-vs-None."""

        def build(loop, trace):
            src = TimeoutSource(
                50, lambda lost: trace.append(("t", loop.clock.now(), lost)) or True
            )
            loop.attach(src)
            assert loop.remove(src.id) is True
            loop.attach(src)  # same clock instant, same id, fresh entry
            loop.run_until(200)

        self.scenario(build)

    def test_callback_reattaches_inflight_sibling(self):
        """A callback detaching and re-attaching a sibling that is ready
        in the same batch: the sibling's dispatch advances its deadline
        past the freshly indexed one, which must be reconciled."""

        def build(loop, trace):
            sib = TimeoutSource(
                50, lambda lost: trace.append(("sib", loop.clock.now(), lost)) or True
            )

            def killer(lost):
                trace.append(("killer", loop.clock.now(), lost))
                loop.remove(sib.id)
                loop.attach(sib)
                return True

            loop.attach(TimeoutSource(50, killer, Priority.HIGH))
            loop.attach(sib)
            loop.run_until(400)

        self.scenario(build)

    def test_callback_reattaches_own_source(self):
        def build(loop, trace):
            box = {}

            def cb(lost):
                trace.append(("t", loop.clock.now(), lost))
                loop.remove(box["src"].id)
                loop.attach(box["src"])
                return True

            box["src"] = TimeoutSource(30, cb)
            loop.attach(box["src"])
            loop.run_until(200)

        self.scenario(build)

    def test_exception_in_callback_keeps_timer_indexed(self):
        """A raising callback must not strand other popped-ready timers."""
        for loop_cls in (ReferenceLoop, MainLoop):
            loop = loop_cls()
            fired = []

            def boom(lost):
                raise RuntimeError("callback failure")

            boom_id = loop.timeout_add(50, boom, Priority.HIGH)
            loop.timeout_add(50, lambda lost: fired.append(loop.clock.now()) or True)
            with pytest.raises(RuntimeError):
                loop.run_until(200)
            # Drop the broken source; the survivor (popped ready alongside
            # it when the exception hit) must still be schedulable.
            assert loop.remove(boom_id) is True
            loop.run_until(200)
            assert fired, f"{loop_cls.__name__}: timer starved after exception"
            assert loop.clock.now() == 200.0
