"""Tests for repro.eventloop.loop.MainLoop."""

import pytest

from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition, Priority, TimeoutSource


class FakeChannel:
    def __init__(self):
        self.data = b""

    def readable(self):
        return bool(self.data)

    def writable(self):
        return True


class TestSourceManagement:
    def test_attach_returns_id(self):
        loop = MainLoop()
        sid = loop.timeout_add(50, lambda lost: True)
        assert isinstance(sid, int)

    def test_double_attach_rejected(self):
        loop = MainLoop()
        src = TimeoutSource(50, lambda lost: True)
        loop.attach(src)
        with pytest.raises(ValueError):
            loop.attach(src)

    def test_remove_known_source(self):
        loop = MainLoop()
        sid = loop.timeout_add(50, lambda lost: True)
        assert loop.remove(sid) is True
        assert loop.sources == []

    def test_remove_unknown_source(self):
        assert MainLoop().remove(12345) is False


class TestTimeoutDispatch:
    def test_periodic_callback_fires_per_interval(self):
        loop = MainLoop()
        fired = []
        loop.timeout_add(50, lambda lost: fired.append(loop.clock.now()) or True)
        loop.run_until(500)
        assert fired == [50.0 * i for i in range(1, 10)]

    def test_callback_false_removes_source(self):
        loop = MainLoop()
        fired = []
        loop.timeout_add(50, lambda lost: fired.append(1) and False)
        loop.run_until(500)
        assert fired == [1]
        assert loop.sources == []

    def test_two_timers_interleave_in_time_order(self):
        loop = MainLoop()
        order = []
        loop.timeout_add(30, lambda lost: order.append(("a", loop.clock.now())) or True)
        loop.timeout_add(50, lambda lost: order.append(("b", loop.clock.now())) or True)
        loop.run_until(100)
        assert order == [("a", 30.0), ("b", 50.0), ("a", 60.0), ("a", 90.0)]

    def test_simultaneous_timers_dispatch_by_priority(self):
        loop = MainLoop()
        order = []
        loop.timeout_add(50, lambda lost: order.append("low") or True, Priority.LOW)
        loop.timeout_add(50, lambda lost: order.append("high") or True, Priority.HIGH)
        loop.run_until(60)
        assert order == ["high", "low"]

    def test_run_until_leaves_clock_at_deadline(self):
        loop = MainLoop()
        loop.timeout_add(30, lambda lost: True)
        loop.run_until(100)
        assert loop.clock.now() == 100.0

    def test_run_for_relative(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: True)
        loop.run_for(100)
        loop.run_for(100)
        assert loop.clock.now() == 200.0


class TestIdleDispatch:
    def test_idle_runs_when_no_timer_ready(self):
        loop = MainLoop()
        count = []
        loop.idle_add(lambda: count.append(1) or (len(count) < 5))
        loop.run()
        assert len(count) == 5

    def test_idle_does_not_preempt_ready_timer(self):
        loop = MainLoop()
        order = []
        loop.clock.advance(60)  # timer attached below will already be late
        loop.timeout_add(50, lambda lost: order.append("timer") or False)
        loop.idle_add(lambda: order.append("idle") or False)
        loop.clock.advance(60)
        loop.iteration(may_block=False)
        assert order[0] == "timer"


class TestIOWatchDispatch:
    def test_watch_fires_when_channel_readable(self):
        loop = MainLoop()
        chan = FakeChannel()
        seen = []

        def reader(ch, cond):
            seen.append(ch.data)
            ch.data = b""
            return True

        loop.io_add_watch(chan, IOCondition.IN, reader)
        loop.iteration(may_block=False)
        assert seen == []
        chan.data = b"x"
        loop.iteration(may_block=False)
        assert seen == [b"x"]

    def test_io_and_timer_coexist(self):
        loop = MainLoop()
        chan = FakeChannel()
        events = []

        def reader(ch, cond):
            events.append(("io", loop.clock.now()))
            ch.data = b""
            return True

        loop.io_add_watch(chan, IOCondition.IN, reader)
        loop.timeout_add(50, lambda lost: events.append(("timer", loop.clock.now())) or True)

        def feeder(lost):
            chan.data = b"x"
            return True

        loop.timeout_add(30, feeder)
        loop.run_until(100)
        assert ("timer", 50.0) in events
        assert any(kind == "io" for kind, _ in events)


class TestLostTimeouts:
    def test_kernel_latency_produces_lost_intervals(self):
        """Section 4.5: under scheduling latency, timeouts are lost and
        the callback learns how many."""
        # 10 ms timer quantisation plus a brutal 120 ms latency spike on
        # the first wakeup only.
        spikes = {10.0: 120.0}
        clock = KernelTimerModel(
            VirtualClock(), tick_ms=10.0, latency=lambda t: spikes.pop(t, 0.0)
        )
        loop = MainLoop(clock=clock)
        lost_seen = []
        loop.timeout_add(10, lambda lost: lost_seen.append(lost) or True)
        loop.run_until(200)
        assert lost_seen[0] > 0  # the spike swallowed whole intervals
        assert sum(lost_seen) >= 10

    def test_no_latency_means_no_lost(self):
        clock = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        loop = MainLoop(clock=clock)
        lost_seen = []
        loop.timeout_add(50, lambda lost: lost_seen.append(lost) or True)
        loop.run_until(500)
        assert all(lost == 0 for lost in lost_seen)

    def test_quantised_period_still_counts_cleanly(self):
        """A 25 ms request on a 10 ms tick wakes at 30, 60, 90..."""
        clock = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        loop = MainLoop(clock=clock)
        times = []
        loop.timeout_add(25, lambda lost: times.append(loop.clock.now()) or True)
        loop.run_until(200)
        assert times[0] == 30.0  # 25 rounded up to the tick


class TestRunControl:
    def test_quit_stops_run(self):
        loop = MainLoop()
        count = []

        def cb(lost):
            count.append(1)
            if len(count) >= 3:
                loop.quit()
            return True

        loop.timeout_add(10, cb)
        loop.run()
        assert len(count) == 3

    def test_run_exits_when_no_sources_remain(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: False)
        loop.run()  # must terminate

    def test_run_max_iterations(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: True)
        loop.run(max_iterations=7)
        assert loop.iterations >= 7


class TestHintedWatches:
    """IN watches on edge-notifying channels skip per-iteration polling.

    A channel that can promise "I fire a callback whenever readable()
    may have flipped true" (the zero-delay in-memory transport) moves
    to the hinted partition: the loop probes it only after a hint, so a
    thousand quiet connections cost nothing per tick.  Channels that
    cannot promise the edge — sockets, delayed links, fault-injected
    links — stay level-polled.
    """

    def make_pair(self, loop, latency_ms=0.0):
        from repro.net.transport import memory_pair

        return memory_pair(loop.clock, latency_ms=latency_ms)

    def test_zero_delay_memory_watch_is_hinted_not_polled(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        wid = loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        assert wid in loop._hint_polled
        assert wid not in loop._polled
        assert loop._io_count == 0

    def test_hinted_watch_fires_on_send(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        got = []
        loop.io_add_watch(
            far, IOCondition.IN, lambda ch, cond: got.append(ch.recv()) or True
        )
        loop.run_for(1)
        assert got == []  # quiet channel: nothing dispatched
        near.send(b"ping")
        loop.run_for(1)
        assert got == [b"ping"]

    def test_idle_hinted_watch_is_not_probed(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        probes = []
        original = far.readable
        far.readable = lambda: probes.append(1) or original()
        loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        loop.run_for(5)  # attach probe happens once, then silence
        baseline = len(probes)
        loop.run_for(50)
        assert len(probes) == baseline

    def test_hint_stays_armed_while_undrained(self):
        # Level-triggered: a callback that reads less than what is
        # queued must fire again without a new send.
        loop = MainLoop()
        near, far = self.make_pair(loop)
        chunks = []
        loop.io_add_watch(
            far, IOCondition.IN, lambda ch, cond: chunks.append(ch.recv(2)) or True
        )
        near.send(b"abcd")
        loop.run_for(5)
        assert b"".join(chunks) == b"abcd"

    def test_peer_close_wakes_hinted_watch(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        seen = []
        loop.io_add_watch(
            far, IOCondition.IN, lambda ch, cond: seen.append(ch.recv()) or False
        )
        loop.run_for(1)
        near.close()  # EOF edge: readable() flips true via the closed link
        loop.run_for(1)
        assert seen == [b""]

    def test_delayed_link_stays_polled_and_delivers_on_time(self):
        loop = MainLoop()
        near, far = self.make_pair(loop, latency_ms=40.0)
        wid = loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        assert wid in loop._polled  # delay needs clock-driven readiness
        got = []
        loop.remove(wid)
        loop.io_add_watch(
            far,
            IOCondition.IN,
            lambda ch, cond: got.append((loop.clock.now(), ch.recv())) or True,
        )
        near.send(b"late")
        loop.run_for(100)
        assert got and got[0][1] == b"late"
        assert got[0][0] >= 40.0

    def test_faulty_link_stays_polled(self):
        from repro.net.faults import FaultPlan, faulty_pair

        loop = MainLoop()
        near, far, _, _ = faulty_pair(loop.clock, client_plan=FaultPlan())
        wid = loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        assert wid in loop._polled
        assert wid not in loop._hint_polled

    def test_detach_unregisters_listener(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        wid = loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        loop.remove(wid)
        assert wid not in loop._hint_polled
        assert not far._in._listeners  # listener gone with the watch
        near.send(b"x")  # must not resurrect the removed source
        loop.run_for(1)
        assert wid not in loop._hinted

    def test_out_condition_watch_stays_polled(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        wid = loop.io_add_watch(far, IOCondition.OUT, lambda ch, cond: False)
        assert wid in loop._polled

    def test_run_blocks_instead_of_spinning_with_only_hinted_watches(self):
        loop = MainLoop()
        near, far = self.make_pair(loop)
        loop.io_add_watch(far, IOCondition.IN, lambda ch, cond: True)
        loop.run(max_iterations=5)  # must terminate, not busy-spin
        assert loop.iterations >= 5
