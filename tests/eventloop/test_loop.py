"""Tests for repro.eventloop.loop.MainLoop."""

import pytest

from repro.eventloop.clock import KernelTimerModel, VirtualClock
from repro.eventloop.loop import MainLoop
from repro.eventloop.sources import IOCondition, Priority, TimeoutSource


class FakeChannel:
    def __init__(self):
        self.data = b""

    def readable(self):
        return bool(self.data)

    def writable(self):
        return True


class TestSourceManagement:
    def test_attach_returns_id(self):
        loop = MainLoop()
        sid = loop.timeout_add(50, lambda lost: True)
        assert isinstance(sid, int)

    def test_double_attach_rejected(self):
        loop = MainLoop()
        src = TimeoutSource(50, lambda lost: True)
        loop.attach(src)
        with pytest.raises(ValueError):
            loop.attach(src)

    def test_remove_known_source(self):
        loop = MainLoop()
        sid = loop.timeout_add(50, lambda lost: True)
        assert loop.remove(sid) is True
        assert loop.sources == []

    def test_remove_unknown_source(self):
        assert MainLoop().remove(12345) is False


class TestTimeoutDispatch:
    def test_periodic_callback_fires_per_interval(self):
        loop = MainLoop()
        fired = []
        loop.timeout_add(50, lambda lost: fired.append(loop.clock.now()) or True)
        loop.run_until(500)
        assert fired == [50.0 * i for i in range(1, 10)]

    def test_callback_false_removes_source(self):
        loop = MainLoop()
        fired = []
        loop.timeout_add(50, lambda lost: fired.append(1) and False)
        loop.run_until(500)
        assert fired == [1]
        assert loop.sources == []

    def test_two_timers_interleave_in_time_order(self):
        loop = MainLoop()
        order = []
        loop.timeout_add(30, lambda lost: order.append(("a", loop.clock.now())) or True)
        loop.timeout_add(50, lambda lost: order.append(("b", loop.clock.now())) or True)
        loop.run_until(100)
        assert order == [("a", 30.0), ("b", 50.0), ("a", 60.0), ("a", 90.0)]

    def test_simultaneous_timers_dispatch_by_priority(self):
        loop = MainLoop()
        order = []
        loop.timeout_add(50, lambda lost: order.append("low") or True, Priority.LOW)
        loop.timeout_add(50, lambda lost: order.append("high") or True, Priority.HIGH)
        loop.run_until(60)
        assert order == ["high", "low"]

    def test_run_until_leaves_clock_at_deadline(self):
        loop = MainLoop()
        loop.timeout_add(30, lambda lost: True)
        loop.run_until(100)
        assert loop.clock.now() == 100.0

    def test_run_for_relative(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: True)
        loop.run_for(100)
        loop.run_for(100)
        assert loop.clock.now() == 200.0


class TestIdleDispatch:
    def test_idle_runs_when_no_timer_ready(self):
        loop = MainLoop()
        count = []
        loop.idle_add(lambda: count.append(1) or (len(count) < 5))
        loop.run()
        assert len(count) == 5

    def test_idle_does_not_preempt_ready_timer(self):
        loop = MainLoop()
        order = []
        loop.clock.advance(60)  # timer attached below will already be late
        loop.timeout_add(50, lambda lost: order.append("timer") or False)
        loop.idle_add(lambda: order.append("idle") or False)
        loop.clock.advance(60)
        loop.iteration(may_block=False)
        assert order[0] == "timer"


class TestIOWatchDispatch:
    def test_watch_fires_when_channel_readable(self):
        loop = MainLoop()
        chan = FakeChannel()
        seen = []

        def reader(ch, cond):
            seen.append(ch.data)
            ch.data = b""
            return True

        loop.io_add_watch(chan, IOCondition.IN, reader)
        loop.iteration(may_block=False)
        assert seen == []
        chan.data = b"x"
        loop.iteration(may_block=False)
        assert seen == [b"x"]

    def test_io_and_timer_coexist(self):
        loop = MainLoop()
        chan = FakeChannel()
        events = []

        def reader(ch, cond):
            events.append(("io", loop.clock.now()))
            ch.data = b""
            return True

        loop.io_add_watch(chan, IOCondition.IN, reader)
        loop.timeout_add(50, lambda lost: events.append(("timer", loop.clock.now())) or True)

        def feeder(lost):
            chan.data = b"x"
            return True

        loop.timeout_add(30, feeder)
        loop.run_until(100)
        assert ("timer", 50.0) in events
        assert any(kind == "io" for kind, _ in events)


class TestLostTimeouts:
    def test_kernel_latency_produces_lost_intervals(self):
        """Section 4.5: under scheduling latency, timeouts are lost and
        the callback learns how many."""
        # 10 ms timer quantisation plus a brutal 120 ms latency spike on
        # the first wakeup only.
        spikes = {10.0: 120.0}
        clock = KernelTimerModel(
            VirtualClock(), tick_ms=10.0, latency=lambda t: spikes.pop(t, 0.0)
        )
        loop = MainLoop(clock=clock)
        lost_seen = []
        loop.timeout_add(10, lambda lost: lost_seen.append(lost) or True)
        loop.run_until(200)
        assert lost_seen[0] > 0  # the spike swallowed whole intervals
        assert sum(lost_seen) >= 10

    def test_no_latency_means_no_lost(self):
        clock = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        loop = MainLoop(clock=clock)
        lost_seen = []
        loop.timeout_add(50, lambda lost: lost_seen.append(lost) or True)
        loop.run_until(500)
        assert all(lost == 0 for lost in lost_seen)

    def test_quantised_period_still_counts_cleanly(self):
        """A 25 ms request on a 10 ms tick wakes at 30, 60, 90..."""
        clock = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        loop = MainLoop(clock=clock)
        times = []
        loop.timeout_add(25, lambda lost: times.append(loop.clock.now()) or True)
        loop.run_until(200)
        assert times[0] == 30.0  # 25 rounded up to the tick


class TestRunControl:
    def test_quit_stops_run(self):
        loop = MainLoop()
        count = []

        def cb(lost):
            count.append(1)
            if len(count) >= 3:
                loop.quit()
            return True

        loop.timeout_add(10, cb)
        loop.run()
        assert len(count) == 3

    def test_run_exits_when_no_sources_remain(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: False)
        loop.run()  # must terminate

    def test_run_max_iterations(self):
        loop = MainLoop()
        loop.timeout_add(10, lambda lost: True)
        loop.run(max_iterations=7)
        assert loop.iterations >= 7
