"""Tests for repro.eventloop.clock."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.eventloop.clock import KernelTimerModel, SystemClock, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(start_ms=150.0).now() == 150.0

    def test_advance_moves_time(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.now() == 10.0

    def test_advance_returns_new_time(self):
        clock = VirtualClock(5.0)
        assert clock.advance(10.0) == 15.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_wait_until_jumps_forward(self):
        clock = VirtualClock()
        clock.wait_until(42.0)
        assert clock.now() == 42.0

    def test_wait_until_past_is_noop(self):
        clock = VirtualClock(100.0)
        clock.wait_until(50.0)
        assert clock.now() == 100.0

    def test_ideal_wakeup_time(self):
        assert VirtualClock().wakeup_time(33.3) == 33.3

    @given(st.lists(st.floats(min_value=0, max_value=1e6), max_size=50))
    def test_monotonic_under_any_advances(self, deltas):
        clock = VirtualClock()
        previous = clock.now()
        for delta in deltas:
            clock.advance(delta)
            assert clock.now() >= previous
            previous = clock.now()


class TestSystemClock:
    def test_starts_near_zero(self):
        assert SystemClock().now() < 1000.0

    def test_advances_with_real_time(self):
        clock = SystemClock()
        t0 = clock.now()
        clock.wait_until(t0 + 5.0)
        assert clock.now() >= t0 + 5.0

    def test_wait_until_past_returns_immediately(self):
        clock = SystemClock()
        clock.wait_until(clock.now() - 1000.0)  # must not hang


class TestKernelTimerModel:
    def test_quantises_up_to_tick(self):
        model = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        assert model.wakeup_time(1.0) == 10.0
        assert model.wakeup_time(10.0) == 10.0
        assert model.wakeup_time(10.1) == 20.0

    def test_exact_multiples_not_rounded_up(self):
        model = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        assert model.wakeup_time(50.0) == 50.0

    def test_wait_until_lands_on_tick(self):
        base = VirtualClock()
        model = KernelTimerModel(base, tick_ms=10.0)
        model.wait_until(23.0)
        assert base.now() == 30.0

    def test_latency_model_applied(self):
        model = KernelTimerModel(VirtualClock(), tick_ms=10.0, latency=lambda t: 3.0)
        assert model.wakeup_time(15.0) == 23.0

    def test_negative_latency_rejected(self):
        model = KernelTimerModel(VirtualClock(), tick_ms=10.0, latency=lambda t: -1.0)
        with pytest.raises(ValueError):
            model.wakeup_time(5.0)

    def test_zero_tick_rejected(self):
        with pytest.raises(ValueError):
            KernelTimerModel(VirtualClock(), tick_ms=0.0)

    def test_now_passthrough(self):
        base = VirtualClock(77.0)
        assert KernelTimerModel(base).now() == 77.0

    def test_advance_passthrough(self):
        base = VirtualClock()
        model = KernelTimerModel(base)
        model.advance(5.0)
        assert base.now() == 5.0

    def test_advance_requires_virtual_base(self):
        model = KernelTimerModel(SystemClock())
        with pytest.raises(TypeError):
            model.advance(5.0)

    def test_max_polling_frequency_is_100hz_at_10ms_tick(self):
        """Section 4.5: a 10 ms timer interrupt caps polling at 100 Hz."""
        model = KernelTimerModel(VirtualClock(), tick_ms=10.0)
        wakeups = set()
        for req_ms in [1, 2, 3, 5, 7, 9, 9.99]:
            wakeups.add(model.wakeup_time(req_ms))
        assert wakeups == {10.0}  # all sub-tick requests collapse to one tick

    @given(
        st.floats(min_value=0.001, max_value=1e5),
        st.floats(min_value=0.1, max_value=1000),
    )
    def test_wakeup_never_early(self, deadline, tick):
        model = KernelTimerModel(VirtualClock(), tick_ms=tick)
        woken = model.wakeup_time(deadline)
        assert woken >= deadline - 1e-6

    @given(
        st.floats(min_value=0.001, max_value=1e5),
        st.floats(min_value=0.1, max_value=1000),
    )
    def test_wakeup_within_one_tick(self, deadline, tick):
        model = KernelTimerModel(VirtualClock(), tick_ms=tick)
        woken = model.wakeup_time(deadline)
        assert woken - deadline <= tick + 1e-6
