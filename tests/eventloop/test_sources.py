"""Tests for repro.eventloop.sources."""

import pytest

from repro.eventloop.sources import (
    IdleSource,
    IOCondition,
    IOWatch,
    Priority,
    Source,
    TimeoutSource,
)


class FakeChannel:
    """Minimal Pollable for IOWatch tests."""

    def __init__(self, can_read=False, can_write=False):
        self.can_read = can_read
        self.can_write = can_write

    def readable(self):
        return self.can_read

    def writable(self):
        return self.can_write


class TestSourceBasics:
    def test_ids_are_unique(self):
        a = IdleSource(lambda: True)
        b = IdleSource(lambda: True)
        assert a.id != b.id

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            IdleSource("not callable")

    def test_destroy_marks_source(self):
        src = IdleSource(lambda: True)
        src.destroy()
        assert src.destroyed


class TestTimeoutSource:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            TimeoutSource(0, lambda lost: True)
        with pytest.raises(ValueError):
            TimeoutSource(-5, lambda lost: True)

    def test_not_ready_before_start(self):
        src = TimeoutSource(50, lambda lost: True)
        assert not src.ready(1000.0)

    def test_first_deadline_one_interval_after_start(self):
        src = TimeoutSource(50, lambda lost: True)
        src.start(100.0)
        assert src.deadline == 150.0
        assert not src.ready(149.0)
        assert src.ready(150.0)

    def test_dispatch_advances_deadline(self):
        src = TimeoutSource(50, lambda lost: True)
        src.start(0.0)
        src.dispatch(50.0)
        assert src.deadline == 100.0

    def test_on_time_dispatch_reports_zero_lost(self):
        seen = []
        src = TimeoutSource(50, lambda lost: seen.append(lost) or True)
        src.start(0.0)
        src.dispatch(50.0)
        assert seen == [0]

    def test_late_dispatch_counts_missed_intervals(self):
        """Section 4.5: lost timeouts are tracked and reported."""
        seen = []
        src = TimeoutSource(50, lambda lost: seen.append(lost) or True)
        src.start(0.0)
        src.dispatch(175.0)  # deadline was 50; intervals 100 and 150 lost
        assert seen == [2]
        assert src.missed == 2
        assert src.deadline == 200.0  # stays phase-aligned

    def test_slightly_late_dispatch_loses_nothing(self):
        seen = []
        src = TimeoutSource(50, lambda lost: seen.append(lost) or True)
        src.start(0.0)
        src.dispatch(99.0)
        assert seen == [0]
        assert src.deadline == 100.0

    def test_fired_counter(self):
        src = TimeoutSource(50, lambda lost: True)
        src.start(0.0)
        src.dispatch(50.0)
        src.dispatch(100.0)
        assert src.fired == 2

    def test_callback_false_means_remove(self):
        src = TimeoutSource(50, lambda lost: False)
        src.start(0.0)
        assert src.dispatch(50.0) is False


class TestIdleSource:
    def test_always_ready(self):
        assert IdleSource(lambda: True).ready(0.0)
        assert IdleSource(lambda: True).ready(1e9)

    def test_default_priority_is_idle(self):
        assert IdleSource(lambda: True).priority == Priority.DEFAULT_IDLE

    def test_no_deadline(self):
        assert IdleSource(lambda: True).next_deadline(0.0) is None


class TestIOWatch:
    def test_requires_pollable(self):
        with pytest.raises(TypeError):
            IOWatch(object(), IOCondition.IN, lambda ch, cond: True)

    def test_ready_tracks_readability(self):
        chan = FakeChannel(can_read=False)
        watch = IOWatch(chan, IOCondition.IN, lambda ch, cond: True)
        assert not watch.ready(0.0)
        chan.can_read = True
        assert watch.ready(0.0)

    def test_out_condition(self):
        chan = FakeChannel(can_write=True)
        watch = IOWatch(chan, IOCondition.OUT, lambda ch, cond: True)
        assert watch.ready(0.0)

    def test_in_watch_ignores_writability(self):
        chan = FakeChannel(can_read=False, can_write=True)
        watch = IOWatch(chan, IOCondition.IN, lambda ch, cond: True)
        assert not watch.ready(0.0)

    def test_callback_receives_channel_and_condition(self):
        chan = FakeChannel(can_read=True)
        seen = []
        watch = IOWatch(
            chan, IOCondition.IN, lambda ch, cond: seen.append((ch, cond)) or True
        )
        watch.dispatch(0.0)
        assert seen == [(chan, IOCondition.IN)]

    def test_combined_condition_reports_fired_subset(self):
        chan = FakeChannel(can_read=True, can_write=False)
        seen = []
        watch = IOWatch(
            chan,
            IOCondition.IN | IOCondition.OUT,
            lambda ch, cond: seen.append(cond) or True,
        )
        watch.dispatch(0.0)
        assert seen == [IOCondition.IN]
